open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Invariant = Hope_core.Invariant
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rpc = Hope_rpc.Rpc
open Program.Syntax

type params = {
  workers : int;
  converge_at : int;
  iter_cost : float;
  check_cost : float;
}

let default_params =
  { workers = 4; converge_at = 12; iter_cost = 500e-6; check_cost = 100e-6 }

type result = {
  makespan : float;
  wasted_iterations : int;
  rollbacks : int;
  messages : int;
}

let encode_check ~aid ~iter ~worker =
  Value.triple (Value.Aid_v aid) (Value.Int iter) (Value.Int worker)

let is_check_for iter env =
  Envelope.is_user env
  &&
  match Envelope.value env with
  | Value.Pair (Value.Aid_v _, Value.Pair (Value.Int i, Value.Int _)) -> i = iter
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Optimistic protocol                                                 *)
(* ------------------------------------------------------------------ *)

(* Each worker races ahead: one assumption per iteration, guessed before
   the coordinator has seen the residual. The rollback at convergence
   discards exactly the overshoot. *)
let optimistic_worker p ~coordinator ~worker =
  let rec iterate iter =
    let* () = Program.compute p.iter_cost in
    let* () = Program.incr_counter "scientific.iterations" in
    let* not_converged = Program.aid_init () in
    let* () = Program.send coordinator (encode_check ~aid:not_converged ~iter ~worker) in
    let* keep_going = Program.guess not_converged in
    if keep_going then iterate (iter + 1) else Program.return ()
  in
  iterate 0

(* The coordinator gathers one residual per worker per iteration and rules
   on the "not converged" assumptions. *)
let optimistic_coordinator p =
  let rec gather iter =
    let* aids =
      Program.fold 1 p.workers [] (fun acc _ ->
          let* env = Program.recv_where (is_check_for iter) in
          let aid =
            match Envelope.value env with
            | Value.Pair (Value.Aid_v a, _) -> a
            | _ -> assert false
          in
          Program.return (aid :: acc))
    in
    let* () = Program.compute p.check_cost in
    if iter < p.converge_at then
      let* () = Program.iter_list Program.affirm aids in
      gather (iter + 1)
    else Program.iter_list Program.deny aids
  in
  gather 0

(* ------------------------------------------------------------------ *)
(* Pessimistic protocol: a barrier per iteration                       *)
(* ------------------------------------------------------------------ *)

let pessimistic_worker p ~coordinator ~worker =
  let rec iterate iter =
    let* () = Program.compute p.iter_cost in
    let* () = Program.incr_counter "scientific.iterations" in
    let* verdict =
      Rpc.call ~server:coordinator (Value.Pair (Value.Int iter, Value.Int worker))
    in
    if Value.to_bool verdict then iterate (iter + 1) else Program.return ()
  in
  iterate 0

let pessimistic_coordinator p =
  (* Collect the whole group before answering anyone: a real barrier. *)
  let rec gather iter =
    let* waiting =
      Program.fold 1 p.workers [] (fun acc _ ->
          let* env = Program.recv () in
          match Hope_rpc.Protocol.as_request (Envelope.value env) with
          | Some (call_id, reply_to, _) -> Program.return ((call_id, reply_to) :: acc)
          | None -> Program.return acc)
    in
    let* () = Program.compute p.check_cost in
    let continue_ = iter < p.converge_at in
    let* () =
      Program.iter_list
        (fun (call_id, reply_to) ->
          Program.send reply_to
            (Hope_rpc.Protocol.response ~call_id (Value.Bool continue_)))
        waiting
    in
    if continue_ then gather (iter + 1) else Program.return ()
  in
  gather 0

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 42) ?obs ?(latency = Hope_net.Latency.man)
    ?(sched_config = Scheduler.epoch_1995_config) ?(on_setup = ignore) ~mode p =
  let engine = Engine.create ~seed ?obs () in
  let sched =
    Scheduler.create ~engine ~default_latency:latency ~config:sched_config ()
  in
  let rt = Runtime.install sched () in
  on_setup rt;
  let coordinator =
    Scheduler.spawn sched ~node:0 ~name:"coordinator"
      (match mode with
      | `Pessimistic -> pessimistic_coordinator p
      | `Optimistic -> optimistic_coordinator p)
  in
  let workers =
    List.init p.workers (fun w ->
        Scheduler.spawn sched ~node:(w + 1) ~name:(Printf.sprintf "worker-%d" w)
          (match mode with
          | `Pessimistic -> pessimistic_worker p ~coordinator ~worker:w
          | `Optimistic -> optimistic_worker p ~coordinator ~worker:w))
  in
  (match Scheduler.run ~max_events:50_000_000 sched with
  | Hope_sim.Engine.Quiescent -> ()
  | reason ->
    failwith
      (Format.asprintf "scientific did not quiesce: %a"
         Hope_sim.Engine.pp_stop_reason reason));
  (match Invariant.check_all rt with
  | [] -> ()
  | vs ->
    failwith
      (Format.asprintf "scientific invariant violations: %a"
         (Format.pp_print_list Invariant.pp_violation)
         vs));
  let makespan =
    List.fold_left
      (fun acc w ->
        match Scheduler.completion_time sched w with
        | Some at -> Float.max acc at
        | None -> failwith "scientific worker did not terminate")
      0.0 workers
  in
  let m = Engine.metrics engine in
  let useful = p.workers * (p.converge_at + 1) in
  {
    makespan;
    wasted_iterations = Metrics.find_counter m "scientific.iterations" - useful;
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    messages = Metrics.find_counter m "net.user_and_ctl_sends";
  }
