(** Optimistic scientific computing ("Optimistic Programming in PVM", the
    paper's reference [6]) — experiment E10.

    An iterative solver: [workers] processes each compute one iteration of
    their partition, then a coordinator gathers the partial residuals and
    decides whether the computation has converged. Pessimistically that
    decision is a barrier costing a round trip per iteration; HOPE workers
    instead assume "not converged yet" and plunge into the next iteration
    while the reduction is in flight. When the coordinator finally rules
    "converged", the over-speculated iterations roll back.

    The interesting emergent behaviour: the speculation depth is not
    configured anywhere — workers run ahead by exactly however many
    iterations fit into one reduction round trip, which is the latency-
    adaptivity §1 promises from optimism. *)

type params = {
  workers : int;
  converge_at : int;  (** the iteration whose residual test succeeds *)
  iter_cost : float;  (** worker CPU per iteration *)
  check_cost : float;  (** coordinator CPU per residual gathering *)
}

val default_params : params

type result = {
  makespan : float;  (** until every worker knows it has converged *)
  wasted_iterations : int;  (** speculated past convergence, rolled back *)
  rollbacks : int;
  messages : int;
}

val run :
  ?seed:int ->
  ?obs:Hope_obs.Recorder.t ->
  ?latency:Hope_net.Latency.t ->
  ?sched_config:Hope_proc.Scheduler.config ->
  ?on_setup:(Hope_core.Runtime.t -> unit) ->
  mode:[ `Pessimistic | `Optimistic ] ->
  params ->
  result
(** Coordinator on node 0, worker [w] on node [w+1]. @raise Failure on
    non-quiescence or invariant violation. *)
