(* Exhaustive tests of the AID state machine against Figures 4-8 of the
   paper, plus property tests that random message sequences keep the
   machine well-defined and terminal states absorbing. *)

open Hope_types
module M = Hope_core.Aid_machine

let test name f = Alcotest.test_case name `Quick f

let aid_of i = Aid.of_proc (Proc_id.of_int (1000 + i))
let iid i = Interval_id.make ~owner:(Proc_id.of_int i) ~seq:0

let aid_set l = Aid.Set.of_list (List.map aid_of l)

let guess i = Wire.Guess { iid = iid i }
let affirm ?(ido = []) i = Wire.Affirm { iid = iid i; ido = aid_set ido }
let deny i = Wire.Deny { iid = iid i }

let state_is t expected =
  Alcotest.(check string) "state" expected (M.state_name t.M.state)

let replies actions =
  List.map
    (fun (M.Reply { iid; wire }) -> (Interval_id.seq iid, Interval_id.owner iid, wire))
    actions

(* ------------------------- Guess (Figure 6) ----------------------- *)

let test_guess_cold_to_hot () =
  let t = M.create (aid_of 0) in
  state_is t "Cold";
  let actions = M.handle t (guess 1) in
  Alcotest.(check int) "no replies" 0 (List.length actions);
  state_is t "Hot";
  Alcotest.(check int) "DOM records the guess" 1 (Interval_id.Set.cardinal t.M.dom)

let test_guess_hot_accumulates_dom () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (guess 2));
  ignore (M.handle t (guess 3));
  state_is t "Hot";
  Alcotest.(check int) "three dependents" 3 (Interval_id.Set.cardinal t.M.dom)

let test_guess_maybe_passes_the_buck () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (affirm ~ido:[ 7 ] 1));
  state_is t "Maybe";
  match M.handle t (guess 2) with
  | [ M.Reply { iid; wire = Wire.Replace { ido; _ } } ] ->
    Alcotest.(check bool) "addressed to the guesser" true
      (Interval_id.equal iid (Interval_id.make ~owner:(Proc_id.of_int 2) ~seq:0));
    Alcotest.(check bool) "replacement is A_IDO" true
      (Aid.Set.equal ido (aid_set [ 7 ]));
    (* Deviation from Figure 6: the sender IS recorded in DOM, so a later
       Revoke can reach it with a Rebind (see the mli). *)
    Alcotest.(check int) "DOM gains the guesser" 2 (Interval_id.Set.cardinal t.M.dom)
  | _ -> Alcotest.fail "expected a single Replace reply"

let test_guess_true_replies_empty_replace () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 9));
  state_is t "True";
  match M.handle t (guess 2) with
  | [ M.Reply { wire = Wire.Replace { ido; _ }; _ } ] ->
    Alcotest.(check bool) "empty replacement" true (Aid.Set.is_empty ido)
  | _ -> Alcotest.fail "expected Replace {}"

let test_guess_false_replies_rollback () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (deny 9));
  state_is t "False";
  match M.handle t (guess 2) with
  | [ M.Reply { wire = Wire.Rollback _; _ } ] -> ()
  | _ -> Alcotest.fail "expected Rollback"

(* ------------------------- Affirm (Figure 7) ---------------------- *)

let test_affirm_definite () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (guess 2));
  let actions = M.handle t (affirm 3) in
  state_is t "True";
  Alcotest.(check int) "Replace to every DOM member" 2 (List.length actions);
  List.iter
    (fun (_, _, wire) ->
      match wire with
      | Wire.Replace { ido; _ } ->
        Alcotest.(check bool) "empty ido" true (Aid.Set.is_empty ido)
      | _ -> Alcotest.fail "expected Replace")
    (replies actions)

let test_affirm_speculative () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  let actions = M.handle t (affirm ~ido:[ 5; 6 ] 2) in
  state_is t "Maybe";
  Alcotest.(check bool) "A_IDO recorded" true
    (Aid.Set.equal t.M.a_ido (aid_set [ 5; 6 ]));
  match actions with
  | [ M.Reply { wire = Wire.Replace { ido; _ }; _ } ] ->
    Alcotest.(check bool) "Replace carries A_IDO" true
      (Aid.Set.equal ido (aid_set [ 5; 6 ]))
  | _ -> Alcotest.fail "expected one Replace"

let test_affirm_on_cold_is_definite () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  state_is t "True"

let test_affirm_maybe_then_definite () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm ~ido:[ 5 ] 1));
  state_is t "Maybe";
  ignore (M.handle t (affirm 2));
  state_is t "True"

let test_affirm_redundant_on_true () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  let actions = M.handle t (affirm 2) in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  Alcotest.(check int) "counted redundant" 1 t.M.redundant;
  state_is t "True"

let test_affirm_after_deny_is_user_error () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (deny 1));
  ignore (M.handle t (affirm 2));
  Alcotest.(check int) "counted user error" 1 t.M.user_errors;
  state_is t "False"

let test_strict_mode_raises () =
  let t = M.create ~strict:true (aid_of 0) in
  ignore (M.handle t (deny 1));
  Alcotest.(check bool) "strict affirm-after-deny raises" true
    (try
       ignore (M.handle t (affirm 2));
       false
     with M.User_error _ -> true)

(* ------------------------- Deny (Figure 8) ------------------------ *)

let test_deny_rolls_back_dom () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (guess 2));
  let actions = M.handle t (deny 3) in
  state_is t "False";
  Alcotest.(check int) "Rollback to every DOM member" 2 (List.length actions);
  List.iter
    (fun (_, _, wire) ->
      match wire with
      | Wire.Rollback _ -> ()
      | _ -> Alcotest.fail "expected Rollback")
    (replies actions)

let test_deny_on_maybe () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (affirm ~ido:[ 5 ] 2));
  let actions = M.handle t (deny 3) in
  state_is t "False";
  (* The guesser is still in DOM and must be rolled back. *)
  Alcotest.(check int) "rollback sent" 1 (List.length actions)

let test_deny_redundant_on_false () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (deny 1));
  let actions = M.handle t (deny 2) in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  Alcotest.(check int) "counted redundant" 1 t.M.redundant

let test_deny_after_affirm_is_user_error () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  ignore (M.handle t (deny 2));
  Alcotest.(check int) "counted user error" 1 t.M.user_errors;
  state_is t "True"

(* ---------------------- Revoke / Rebind --------------------------- *)

let revoke i = Wire.Revoke { iid = iid i }

let test_revoke_returns_to_hot () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (guess 1));
  ignore (M.handle t (affirm ~ido:[ 5 ] 2));
  state_is t "Maybe";
  let actions = M.handle t (revoke 2) in
  state_is t "Hot";
  Alcotest.(check bool) "A_IDO cleared" true (Aid.Set.is_empty t.M.a_ido);
  (* Every DOM member is told to depend on the AID directly again. *)
  (match actions with
  | [ M.Reply { wire = Wire.Rebind _; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Rebind to the single DOM member");
  (* The re-executed affirm can now rule definitively. *)
  ignore (M.handle t (affirm 2));
  state_is t "True"

let test_revoke_stale_ignored () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm ~ido:[ 5 ] 2));
  state_is t "Maybe";
  (* A revoke from an interval that is not the current affirmer. *)
  let actions = M.handle t (revoke 9) in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  state_is t "Maybe";
  Alcotest.(check int) "counted redundant" 1 t.M.redundant

let test_revoke_on_terminal_ignored () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 2));
  ignore (M.handle t (revoke 2));
  state_is t "True";
  let t2 = M.create (aid_of 1) in
  ignore (M.handle t2 (deny 2));
  ignore (M.handle t2 (revoke 2));
  state_is t2 "False"

let test_maybe_guess_joins_dom_for_rebind () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm ~ido:[ 5 ] 1));
  (* A guess during Maybe gets the Replace reply AND joins DOM... *)
  ignore (M.handle t (guess 3));
  Alcotest.(check int) "guesser recorded" 1 (Interval_id.Set.cardinal t.M.dom);
  (* ...so the revoke can rebind it. *)
  match M.handle t (revoke 1) with
  | [ M.Reply { iid = b; wire = Wire.Rebind _ } ] ->
    Alcotest.(check bool) "rebind addressed to the rewired guesser" true
      (Interval_id.equal b (iid 3))
  | _ -> Alcotest.fail "expected one Rebind"

(* --------------------- protocol violations ------------------------ *)

let test_replace_rejected () =
  let t = M.create (aid_of 0) in
  Alcotest.(check bool) "Replace raises" true
    (try
       ignore (M.handle t (Wire.Replace { iid = iid 1; ido = Aid.Set.empty }));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "Rollback raises" true
    (try
       ignore (M.handle t (Wire.Rollback { iid = iid 1 }));
       false
     with Invalid_argument _ -> true)

(* ------------- exhaustive transition table (Figure 4) ------------- *)

(* Drive a fresh machine into each of the five states, then apply each of
   the six message shapes and check the successor state against the
   Figure 4 diagram. *)
let reach_state = function
  | "Cold" -> M.create (aid_of 0)
  | "Hot" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (guess 1));
    t
  | "Maybe" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (affirm ~ido:[ 9 ] 1));
    t
  | "True" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (affirm 1));
    t
  | "False" ->
    let t = M.create (aid_of 0) in
    ignore (M.handle t (deny 1));
    t
  | s -> Alcotest.failf "unknown state %s" s

let transition_table =
  (* (start state, message, expected successor) *)
  [
    ("Cold", guess 2, "Hot");
    ("Cold", affirm 2, "True");
    ("Cold", affirm ~ido:[ 5 ] 2, "Maybe");
    ("Cold", deny 2, "False");
    ("Hot", guess 2, "Hot");
    ("Hot", affirm 2, "True");
    ("Hot", affirm ~ido:[ 5 ] 2, "Maybe");
    ("Hot", deny 2, "False");
    ("Maybe", guess 2, "Maybe");
    ("Maybe", affirm 2, "True");
    ("Maybe", affirm ~ido:[ 5 ] 2, "Maybe");
    ("Maybe", deny 2, "False");
    ("True", guess 2, "True");
    ("True", affirm 2, "True");
    ("True", affirm ~ido:[ 5 ] 2, "True");
    ("True", deny 2, "True");
    ("False", guess 2, "False");
    ("False", affirm 2, "False");
    ("False", affirm ~ido:[ 5 ] 2, "False");
    ("False", deny 2, "False");
  ]

let test_transition_table () =
  List.iter
    (fun (start, msg, expected) ->
      let t = reach_state start in
      ignore (M.handle t msg);
      Alcotest.(check string)
        (Format.asprintf "%s + %a" start Wire.pp msg)
        expected (M.state_name t.M.state))
    transition_table

(* ------------- pessimistic overlay (DESIGN.md §10) ---------------- *)

let acquire i = Wire.Acquire { iid = iid i }
let withdraw i = Wire.Abort { iid = iid i }
let release i = Wire.Release { iid = iid i }

let test_escalate_uncontended_grant () =
  let t = M.create (aid_of 0) in
  Alcotest.(check string) "fresh machines are optimistic" "optimistic"
    (M.mode_name (M.mode t));
  M.escalate t;
  M.escalate t;
  (* idempotent *)
  Alcotest.(check string) "escalated" "pessimistic" (M.mode_name (M.mode t));
  (match M.handle t (acquire 1) with
  | [ M.Reply { iid = b; wire = Wire.Grant _ } ] ->
    Alcotest.(check bool) "granted the acquirer" true
      (Interval_id.equal b (iid 1))
  | _ -> Alcotest.fail "expected an immediate Grant");
  Alcotest.(check bool) "holder recorded" true (M.holder t = Some (iid 1));
  Alcotest.(check int) "queue empty" 0 (M.queue_length t);
  (* the truth machine is untouched by the overlay *)
  state_is t "Cold"

let grant_to t msg expected =
  match M.handle t msg with
  | [ M.Reply { iid = b; wire = Wire.Grant _ } ] ->
    Alcotest.(check bool) "granted in FIFO order" true
      (Interval_id.equal b (iid expected))
  | _ -> Alcotest.failf "expected a Grant to %d" expected

let test_fifo_grant_order () =
  let t = M.create (aid_of 0) in
  M.escalate t;
  ignore (M.handle t (acquire 1));
  Alcotest.(check int) "no replies for queued waiters" 0
    (List.length (M.handle t (acquire 2)));
  ignore (M.handle t (acquire 3));
  Alcotest.(check int) "two waiting" 2 (M.queue_length t);
  grant_to t (release 1) 2;
  grant_to t (release 2) 3;
  Alcotest.(check int) "last release grants nobody" 0
    (List.length (M.handle t (release 3)));
  Alcotest.(check bool) "free" true (M.holder t = None);
  Alcotest.(check int) "drained" 0 (M.queue_length t)

let test_withdrawn_waiter_skipped () =
  let t = M.create (aid_of 0) in
  M.escalate t;
  ignore (M.handle t (acquire 1));
  ignore (M.handle t (acquire 2));
  ignore (M.handle t (acquire 3));
  (* inbound Abort = the waiter withdrew; no reply, it already resumed *)
  Alcotest.(check int) "withdrawal is silent" 0
    (List.length (M.handle t (withdraw 2)));
  Alcotest.(check int) "live count drops" 1 (M.queue_length t);
  grant_to t (release 1) 3

let test_withdrawing_holder_releases () =
  let t = M.create (aid_of 0) in
  M.escalate t;
  ignore (M.handle t (acquire 1));
  ignore (M.handle t (acquire 2));
  (* the holder declining an in-flight Grant withdraws like a waiter *)
  grant_to t (withdraw 1) 2

let test_optimistic_acquire_bounced () =
  let t = M.create (aid_of 0) in
  match M.handle t (acquire 1) with
  | [ M.Reply { wire = Wire.Abort _; _ } ] -> ()
  | _ -> Alcotest.fail "optimistic-mode Acquire must abort immediately"

let test_queue_overflow_aborts () =
  let t = M.create ~max_queue:2 (aid_of 0) in
  M.escalate t;
  ignore (M.handle t (acquire 1));
  (* holder *)
  ignore (M.handle t (acquire 2));
  ignore (M.handle t (acquire 3));
  (* two queued = the bound *)
  match M.handle t (acquire 4) with
  | [ M.Reply { iid = b; wire = Wire.Abort _ } ] ->
    Alcotest.(check bool) "overflow aborted outright" true
      (Interval_id.equal b (iid 4));
    Alcotest.(check int) "queue still at the bound" 2 (M.queue_length t)
  | _ -> Alcotest.fail "expected an overflow Abort"

let test_deny_aborts_waiters_keeps_holder () =
  let t = M.create (aid_of 0) in
  M.escalate t;
  ignore (M.handle t (acquire 1));
  ignore (M.handle t (acquire 2));
  ignore (M.handle t (acquire 3));
  let aborted =
    List.filter
      (fun (M.Reply { wire; _ }) ->
        match wire with Wire.Abort _ -> true | _ -> false)
      (M.handle t (deny 9))
  in
  state_is t "False";
  Alcotest.(check int) "both waiters aborted" 2 (List.length aborted);
  Alcotest.(check bool) "definite grant survives the deny" true
    (M.holder t = Some (iid 1));
  (* a dead assumption accepts no new acquires... *)
  (match M.handle t (acquire 4) with
  | [ M.Reply { wire = Wire.Abort _; _ } ] -> ()
  | _ -> Alcotest.fail "acquire on False must abort");
  (* ...but the holder's release is still honoured *)
  Alcotest.(check int) "release grants nobody" 0
    (List.length (M.handle t (release 1)));
  Alcotest.(check bool) "free" true (M.holder t = None)

let test_deescalate_aborts_waiters_keeps_holder () =
  let t = M.create (aid_of 0) in
  M.escalate t;
  ignore (M.handle t (acquire 1));
  ignore (M.handle t (acquire 2));
  ignore (M.handle t (acquire 3));
  let aborted = ref [] in
  M.deescalate t ~reply:(fun _aid b wire ->
      match wire with
      | Wire.Abort _ -> aborted := b :: !aborted
      | _ -> Alcotest.fail "de-escalation only aborts");
  Alcotest.(check int) "both waiters aborted" 2 (List.length !aborted);
  Alcotest.(check string) "back to optimistic" "optimistic"
    (M.mode_name (M.mode t));
  Alcotest.(check bool) "holder keeps its definite grant" true
    (M.holder t = Some (iid 1));
  Alcotest.(check int) "late release honoured" 0
    (List.length (M.handle t (release 1)));
  Alcotest.(check bool) "free" true (M.holder t = None)

let test_retired_machine_serves_queue () =
  let t = M.create (aid_of 0) in
  ignore (M.handle t (affirm 1));
  M.retire t;
  M.escalate t;
  grant_to t (acquire 2) 2

(* Random overlay trajectories under the scheduler's ticket discipline
   (each ticket Acquires at most once, withdraws only while unresolved,
   Releases only what it was granted), with Deny / escalate / de-escalate
   interleaved. *)
type ovop = Acq of int | Wdr of int | Rel of int | Deny_all | Esc | Deesc

let pp_ovop = function
  | Acq i -> Printf.sprintf "Acq %d" i
  | Wdr i -> Printf.sprintf "Wdr %d" i
  | Rel i -> Printf.sprintf "Rel %d" i
  | Deny_all -> "Deny"
  | Esc -> "Esc"
  | Deesc -> "Deesc"

let arbitrary_ovops =
  let open QCheck in
  let op =
    Gen.frequency
      [
        (6, Gen.map (fun i -> Acq i) (Gen.int_bound 7));
        (3, Gen.map (fun i -> Wdr i) (Gen.int_bound 7));
        (3, Gen.map (fun i -> Rel i) (Gen.int_bound 7));
        (1, Gen.return Deny_all);
        (1, Gen.return Esc);
        (1, Gen.return Deesc);
      ]
  in
  make
    ~print:(fun l -> String.concat "; " (List.map pp_ovop l))
    Gen.(list_size (int_range 1 80) op)

(* Replay [ops] against one machine and classify every ticket by what
   came back. Checks, at every step, that the holder is a granted,
   never-aborted, never-withdrawn ticket; then drains the queue and
   returns the bookkeeping for the trajectory-end laws. *)
let overlay_replay ops =
  let t = M.create ~max_queue:4 (aid_of 0) in
  M.escalate t;
  let acquired = ref [] and granted = ref [] in
  let aborted = ref [] and withdrawn = ref [] in
  let mem b l = List.exists (Interval_id.equal b) !l in
  let reply _aid b wire =
    match wire with
    | Wire.Grant _ -> granted := b :: !granted
    | Wire.Abort _ -> aborted := b :: !aborted
    | Wire.Rollback _ -> ()
    | w ->
      QCheck.Test.fail_reportf "unexpected overlay reply %s" (Wire.type_name w)
  in
  let apply = function
    | Acq i ->
      if not (mem (iid i) acquired) then begin
        acquired := iid i :: !acquired;
        M.handle_into t (acquire i) ~reply
      end
    | Wdr i ->
      let b = iid i in
      (* withdraw an unresolved ticket, or decline an in-flight Grant *)
      if
        mem b acquired
        && (not (mem b aborted))
        && (not (mem b withdrawn))
        && ((not (mem b granted)) || M.holder t = Some b)
      then begin
        withdrawn := b :: !withdrawn;
        M.handle_into t (withdraw i) ~reply
      end
    | Rel i ->
      if M.holder t = Some (iid i) then M.handle_into t (release i) ~reply
    | Deny_all -> if t.M.state <> M.False_ then M.handle_into t (deny 9) ~reply
    | Esc -> M.escalate t
    | Deesc -> M.deescalate t ~reply
  in
  List.iter
    (fun op ->
      apply op;
      match M.holder t with
      | None -> ()
      | Some h ->
        if not (mem h granted) then
          QCheck.Test.fail_reportf "holder was never granted";
        if mem h aborted then
          QCheck.Test.fail_reportf "an aborted waiter holds the grant";
        if mem h withdrawn then
          QCheck.Test.fail_reportf "a withdrawn ticket holds the grant")
    ops;
  (* Drain: release the holder until the queue empties, then fold the
     mode back so any survivors are aborted. Every ticket must resolve. *)
  M.escalate t;
  let guard = ref 0 in
  while M.holder t <> None && !guard < 100 do
    incr guard;
    match M.holder t with
    | Some h -> M.handle_into t (Wire.Release { iid = h }) ~reply
    | None -> ()
  done;
  M.deescalate t ~reply;
  (t, List.rev !acquired, List.rev !granted, List.rev !aborted, !withdrawn)

let qcheck_overlay_aborted_never_hold =
  QCheck.Test.make
    ~name:"overlay: aborted or withdrawn waiters never hold the grant"
    ~count:500 arbitrary_ovops (fun ops ->
      let _t, _acq, granted, aborted, _wdr = overlay_replay ops in
      (* exactly one resolution per ticket: Grant and Abort are disjoint
         and neither arrives twice *)
      List.iter
        (fun b ->
          if List.exists (Interval_id.equal b) aborted then
            QCheck.Test.fail_reportf "ticket both granted and aborted")
        granted;
      let unique l =
        List.length l
        = List.length (List.sort_uniq (fun a b -> compare a b) l)
      in
      unique granted && unique aborted)

let qcheck_overlay_fifo_drains =
  QCheck.Test.make
    ~name:"overlay: the queue drains and grants follow acquisition order"
    ~count:500 arbitrary_ovops (fun ops ->
      let t, acquired, granted, aborted, withdrawn = overlay_replay ops in
      if M.holder t <> None then QCheck.Test.fail_reportf "drain left a holder";
      if M.queue_length t <> 0 then
        QCheck.Test.fail_reportf "drain left live waiters";
      (* every Acquire completed: grant, abort, or client withdrawal *)
      List.iter
        (fun b ->
          if
            not
              (List.exists (Interval_id.equal b) granted
              || List.exists (Interval_id.equal b) aborted
              || List.exists (Interval_id.equal b) withdrawn)
          then QCheck.Test.fail_reportf "an acquire never resolved")
        acquired;
      (* FIFO: the grant sequence respects acquisition order *)
      let index b =
        let rec go i = function
          | [] -> -1
          | x :: rest -> if Interval_id.equal x b then i else go (i + 1) rest
        in
        go 0 acquired
      in
      let rec ascending last = function
        | [] -> true
        | b :: rest ->
          let i = index b in
          if i <= last then
            QCheck.Test.fail_reportf "grant out of acquisition order"
          else ascending i rest
      in
      ascending (-1) granted)

(* --------------------- property tests ----------------------------- *)

let arbitrary_msg =
  let open QCheck in
  let gen =
    Gen.oneof
      [
        Gen.map (fun i -> guess (i mod 5)) Gen.small_nat;
        Gen.map2
          (fun i aids -> affirm ~ido:aids (i mod 5))
          Gen.small_nat
          Gen.(list_size (Gen.int_bound 3) (Gen.int_bound 5));
        Gen.map (fun i -> deny (i mod 5)) Gen.small_nat;
      ]
  in
  make ~print:(Format.asprintf "%a" Wire.pp) gen

(* Lemma 5.1/5.2 at the machine level: for any two messages, processing
   them in either order leaves the machine in the same state whenever
   neither order aborts — or the conflict is the affirm/deny conflict the
   paper declares meaningless (the machine then keeps the first ruling
   deterministically). *)
let qcheck_commutation_or_first_ruling =
  QCheck.Test.make ~name:"aid: message pairs commute or first ruling wins"
    ~count:500
    QCheck.(pair arbitrary_msg arbitrary_msg)
    (fun (m1, m2) ->
      let run msgs =
        let t = M.create (aid_of 0) in
        List.iter (fun m -> ignore (M.handle t m)) msgs;
        (t.M.state, Interval_id.Set.cardinal t.M.dom)
      in
      let s12, _ = run [ m1; m2 ] and s21, _ = run [ m2; m1 ] in
      match (m1, m2) with
      | Wire.Affirm _, Wire.Deny _ | Wire.Deny _, Wire.Affirm _ ->
        (* the paper: "conflicting affirm and deny primitives have no
           meaning" — each order keeps its first ruling *)
        (s12 = M.True_ || s12 = M.False_) && (s21 = M.True_ || s21 = M.False_)
      | Wire.Affirm { ido = i1; _ }, Wire.Affirm { ido = i2; _ }
        when not (Aid.Set.equal i1 i2) ->
        (* double affirm with different predicates: last writer wins per
           Figure 7; order-dependent by design (redundant-affirm case) *)
        true
      | _ -> s12 = s21)

let qcheck_terminal_states_absorb =
  QCheck.Test.make ~name:"aid: True/False are absorbing" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) arbitrary_msg)
    (fun msgs ->
      let t = M.create (aid_of 0) in
      List.for_all
        (fun msg ->
          let was_final = M.is_final t in
          let before = t.M.state in
          ignore (M.handle t msg);
          (not was_final) || t.M.state = before)
        msgs)

let qcheck_cold_hot_guesses_silent =
  QCheck.Test.make ~name:"aid: Cold/Hot guesses never get replies" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) arbitrary_msg)
    (fun msgs ->
      let t = M.create (aid_of 0) in
      List.for_all
        (fun msg ->
          let pre = t.M.state in
          let actions = M.handle t msg in
          match (msg, pre) with
          | Wire.Guess _, (M.Cold | M.Hot) -> actions = []
          | _ -> true)
        msgs)

let () =
  Alcotest.run "aid_machine"
    [
      ( "guess",
        [
          test "Cold -> Hot, DOM records" test_guess_cold_to_hot;
          test "Hot accumulates DOM" test_guess_hot_accumulates_dom;
          test "Maybe passes the buck" test_guess_maybe_passes_the_buck;
          test "True replies Replace {}" test_guess_true_replies_empty_replace;
          test "False replies Rollback" test_guess_false_replies_rollback;
        ] );
      ( "affirm",
        [
          test "definite affirm -> True, notifies DOM" test_affirm_definite;
          test "speculative affirm -> Maybe with A_IDO" test_affirm_speculative;
          test "affirm on Cold" test_affirm_on_cold_is_definite;
          test "Maybe then definite affirm" test_affirm_maybe_then_definite;
          test "redundant affirm ignored" test_affirm_redundant_on_true;
          test "affirm after deny is user error" test_affirm_after_deny_is_user_error;
          test "strict mode raises" test_strict_mode_raises;
        ] );
      ( "deny",
        [
          test "deny rolls back DOM" test_deny_rolls_back_dom;
          test "deny on Maybe" test_deny_on_maybe;
          test "redundant deny ignored" test_deny_redundant_on_false;
          test "deny after affirm is user error" test_deny_after_affirm_is_user_error;
        ] );
      ( "revocation",
        [
          test "revoke returns Maybe to Hot and rebinds" test_revoke_returns_to_hot;
          test "stale revoke ignored" test_revoke_stale_ignored;
          test "revoke on terminal states ignored" test_revoke_on_terminal_ignored;
          test "Maybe guess joins DOM for rebind"
            test_maybe_guess_joins_dom_for_rebind;
        ] );
      ( "overlay",
        [
          test "escalate, uncontended grant" test_escalate_uncontended_grant;
          test "FIFO grant order" test_fifo_grant_order;
          test "withdrawn waiter skipped" test_withdrawn_waiter_skipped;
          test "withdrawing holder releases" test_withdrawing_holder_releases;
          test "optimistic-mode acquire bounced" test_optimistic_acquire_bounced;
          test "queue overflow aborts" test_queue_overflow_aborts;
          test "deny aborts waiters, keeps holder"
            test_deny_aborts_waiters_keeps_holder;
          test "de-escalation aborts waiters, keeps holder"
            test_deescalate_aborts_waiters_keeps_holder;
          test "retired machine still serves the queue"
            test_retired_machine_serves_queue;
          QCheck_alcotest.to_alcotest qcheck_overlay_aborted_never_hold;
          QCheck_alcotest.to_alcotest qcheck_overlay_fifo_drains;
        ] );
      ( "protocol",
        [
          test "Replace/Rollback rejected" test_replace_rejected;
          test "exhaustive transition table (Figure 4)" test_transition_table;
          QCheck_alcotest.to_alcotest qcheck_commutation_or_first_ruling;
          QCheck_alcotest.to_alcotest qcheck_terminal_states_absorb;
          QCheck_alcotest.to_alcotest qcheck_cold_hot_guesses_silent;
        ] );
    ]
