(* Chaos testing: randomly generated multi-process HOPE scenarios, run to
   quiescence and checked against the paper's invariants (wait-freedom,
   Theorem 5.1, no stuck speculation), across many seeds.

   Each scenario spawns a few resolver processes (which affirm ~70% and
   deny ~30% of the assumptions announced to them, after random delays)
   and a few worker processes executing random scripts of speculation,
   cross-worker sends (which propagate dependency tags), computation, and
   non-blocking receives. A denial skips part of the denied worker's
   script, so rollbacks genuinely change control flow; cross-worker sends
   make rollback cascades span processes. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Rng = Hope_sim.Rng
open Program.Syntax
open Test_support.Util

let test name f = Alcotest.test_case name `Quick f

type op =
  | Speculate of { resolver : int; skip_on_false : int }
  | Cross_send of { to_worker : int }
  | Drain
  | Work of float

let random_script ?(cross_sends = true) rng ~n_resolvers ~n_workers ~length =
  List.init length (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        Speculate
          { resolver = Rng.int rng n_resolvers; skip_on_false = Rng.int rng 3 }
      | (4 | 5 | 6) when cross_sends -> Cross_send { to_worker = Rng.int rng n_workers }
      | 4 | 5 | 6 -> Work (Rng.float rng 1e-3)
      | 7 | 8 -> Work (Rng.float rng 2e-3)
      | _ -> Drain)

(* The resolver never terminates; it rules on every announcement it
   receives, with a deterministic per-resolver random stream. *)
let resolver_body =
  let rec loop () =
    let* env = Program.recv () in
    match Envelope.value env with
    | Value.Aid_v aid ->
      let* delay = Program.random_float 5e-3 in
      let* () = Program.compute delay in
      let* affirm_it = Program.random_bernoulli 0.7 in
      let* () = if affirm_it then Program.affirm aid else Program.deny aid in
      loop ()
    | _ -> loop ()
  in
  loop ()

let worker_body ~resolvers ~workers ~script =
  let rec interp ops =
    match ops with
    | [] -> Program.return ()
    | Speculate { resolver; skip_on_false } :: rest ->
      let* x = Program.aid_init () in
      let* () = Program.send resolvers.(resolver) (Value.Aid_v x) in
      let* ok = Program.guess x in
      if ok then interp rest
      else
        (* the pessimistic path skips part of the plan *)
        let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
        interp (drop skip_on_false rest)
    | Cross_send { to_worker } :: rest ->
      let* v = Program.random_int 1000 in
      let* () = Program.send workers.(to_worker) (Value.Int v) in
      interp rest
    | Drain :: rest ->
      let* _ = Program.recv_opt () in
      interp rest
    | Work d :: rest ->
      let* () = Program.compute d in
      interp rest
  in
  interp script

type outcome = {
  rollbacks : int;
  guesses : int;
  finalizes : int;
  messages : int;
  events : int;
}

let run_scenario ~seed =
  let scenario_rng = Rng.create ~seed:(seed * 7919) in
  let n_resolvers = 1 + Rng.int scenario_rng 2 in
  let n_workers = 2 + Rng.int scenario_rng 4 in
  let w = make_world ~seed () in
  let resolvers =
    Array.init n_resolvers (fun i ->
        Scheduler.spawn w.sched ~node:i ~name:(Printf.sprintf "resolver-%d" i)
          resolver_body)
  in
  let workers = Array.make n_workers (Proc_id.of_int 0) in
  for i = 0 to n_workers - 1 do
    let script =
      random_script scenario_rng ~n_resolvers ~n_workers
        ~length:(5 + Rng.int scenario_rng 12)
    in
    workers.(i) <-
      Scheduler.spawn w.sched
        ~node:(n_resolvers + i)
        ~name:(Printf.sprintf "worker-%d" i)
        (worker_body ~resolvers ~workers ~script)
  done;
  quiesce ~max_events:5_000_000 w;
  (* Workers must have terminated (resolvers legitimately block). *)
  Array.iter
    (fun pid ->
      if Scheduler.status w.sched pid <> Scheduler.Terminated then
        Alcotest.failf "worker %s stuck" (Proc_id.to_string pid))
    workers;
  check_invariants w;
  let m = Engine.metrics w.engine in
  {
    rollbacks = Metrics.find_counter m "hope.rollbacks";
    guesses = Metrics.find_counter m "hope.guesses";
    finalizes = Metrics.find_counter m "hope.finalizes";
    messages = Metrics.find_counter m "net.user_and_ctl_sends";
    events = Engine.events_processed w.engine;
  }

let test_many_seeds () =
  let total = ref { rollbacks = 0; guesses = 0; finalizes = 0; messages = 0; events = 0 } in
  for seed = 1 to 60 do
    let o = run_scenario ~seed in
    total :=
      {
        rollbacks = !total.rollbacks + o.rollbacks;
        guesses = !total.guesses + o.guesses;
        finalizes = !total.finalizes + o.finalizes;
        messages = !total.messages + o.messages;
        events = !total.events + o.events;
      }
  done;
  (* The exercise must have been real: speculation, denials, recovery. *)
  Alcotest.(check bool) "plenty of speculation" true (!total.guesses > 300);
  Alcotest.(check bool) "denials caused rollbacks" true (!total.rollbacks > 50);
  Alcotest.(check bool) "affirms caused finalizes" true (!total.finalizes > 200)

let test_chaos_deterministic () =
  let a = run_scenario ~seed:5 in
  let b = run_scenario ~seed:5 in
  Alcotest.(check bool) "same seed, identical run" true (a = b);
  let c = run_scenario ~seed:6 in
  Alcotest.(check bool) "different seed, different run" true (a <> c)

let test_chaos_with_all_configs () =
  (* The invariants must hold under every runtime configuration.

     The no-cache configuration runs scripts without cross-worker sends:
     with terminal-state caching off, a process that consumes a message
     carrying a dead assumption keeps executing during the Guess/Rollback
     round trip and can re-send tagged messages that recreate the poison
     faster than it drains — a forward-error-recovery livelock the paper
     does not address (DESIGN.md §3.6). The cache closes it, which is why
     it defaults on. *)
  let configs =
    [
      ("default", Runtime.default_config, true);
      ("no-cache", { Runtime.default_config with cache_terminal_states = false }, false);
      ( "buffered-denies",
        { Runtime.default_config with buffer_speculative_denies = true },
        true );
      ( "fixed-placement",
        { Runtime.default_config with aid_placement = Runtime.Fixed_node 0 },
        true );
    ]
  in
  List.iter
    (fun (name, hope_config, cross_sends) ->
      for seed = 1 to 8 do
        let scenario_rng = Rng.create ~seed:(seed * 104729) in
        let n_resolvers = 1 + Rng.int scenario_rng 2 in
        let n_workers = 2 + Rng.int scenario_rng 3 in
        let w = make_world ~seed ~hope_config () in
        let resolvers =
          Array.init n_resolvers (fun i ->
              Scheduler.spawn w.sched ~node:i ~name:(Printf.sprintf "resolver-%d" i)
                resolver_body)
        in
        let workers = Array.make n_workers (Proc_id.of_int 0) in
        for i = 0 to n_workers - 1 do
          let script =
            random_script ~cross_sends scenario_rng ~n_resolvers ~n_workers
              ~length:(4 + Rng.int scenario_rng 8)
          in
          workers.(i) <-
            Scheduler.spawn w.sched
              ~node:(n_resolvers + i)
              ~name:(Printf.sprintf "worker-%d" i)
              (worker_body ~resolvers ~workers ~script)
        done;
        (try quiesce ~max_events:5_000_000 w
         with e -> Alcotest.failf "%s seed %d: %s" name seed (Printexc.to_string e));
        check_invariants w
      done)
    configs

(* Non-zero instruction costs and WAN latencies move every race window;
   the invariants must not care. *)
let test_chaos_with_costs_and_latencies () =
  List.iter
    (fun (lname, latency) ->
      for seed = 31 to 42 do
        let scenario_rng = Rng.create ~seed:(seed * 31063) in
        let n_resolvers = 1 + Rng.int scenario_rng 2 in
        let n_workers = 2 + Rng.int scenario_rng 4 in
        let w =
          make_world ~seed ~latency
            ~sched_config:Hope_proc.Scheduler.epoch_1995_config ()
        in
        let resolvers =
          Array.init n_resolvers (fun i ->
              Scheduler.spawn w.sched ~node:i ~name:(Printf.sprintf "resolver-%d" i)
                resolver_body)
        in
        let workers = Array.make n_workers (Proc_id.of_int 0) in
        for i = 0 to n_workers - 1 do
          let script =
            random_script scenario_rng ~n_resolvers ~n_workers
              ~length:(5 + Rng.int scenario_rng 10)
          in
          workers.(i) <-
            Scheduler.spawn w.sched
              ~node:(n_resolvers + i)
              ~name:(Printf.sprintf "worker-%d" i)
              (worker_body ~resolvers ~workers ~script)
        done;
        (try quiesce ~max_events:5_000_000 w
         with e ->
           Alcotest.failf "%s seed %d: %s" lname seed (Printexc.to_string e));
        Array.iter
          (fun pid ->
            if Scheduler.status w.sched pid <> Scheduler.Terminated then
              Alcotest.failf "%s seed %d: worker stuck" lname seed)
          workers;
        check_invariants w
      done)
    [ ("lan", Hope_net.Latency.lan); ("wan", Hope_net.Latency.wan);
      ("jitter", Hope_net.Latency.Lognormal { median = 1e-3; sigma = 1.0 }) ]

(* --------------------------------------------------------------- *)
(* injected fault: mutual speculative affirms (§5.3)                *)
(* --------------------------------------------------------------- *)

module Monitor = Hope_obs.Monitor
module Recorder = Hope_obs.Recorder
module Obs_event = Hope_obs.Event

(* Two processes each guess their own assumption and speculatively
   affirm the other's — Figure 13's interference, injected on purpose.
   Under Algorithm 1 the pair bounces forever; under Algorithm 2 a UDO
   cycle cut resolves it. Either way the health monitor must call out
   the state-transition ping-pong as a bounce livelock while it is
   happening, not after the fact. *)
let bounce_world ~algorithm () =
  let w =
    make_world ~hope_config:{ Runtime.default_config with algorithm } ()
  in
  let body other own =
    let* _ = Program.guess own in
    Program.affirm other
  in
  let p =
    Scheduler.spawn w.sched ~name:"p"
      (let* env = Program.recv () in
       let y, x = Value.to_pair (Envelope.value env) in
       body (Value.to_aid x) (Value.to_aid y))
  in
  let q =
    Scheduler.spawn w.sched ~name:"q"
      (let* env = Program.recv () in
       let x, y = Value.to_pair (Envelope.value env) in
       body (Value.to_aid y) (Value.to_aid x))
  in
  ignore
    (Scheduler.spawn w.sched ~name:"coordinator"
       (let* x = Program.aid_init () in
        let* y = Program.aid_init () in
        let* () = Program.send p (Value.Pair (Value.Aid_v y, Value.Aid_v x)) in
        Program.send q (Value.Pair (Value.Aid_v x, Value.Aid_v y)))
      : Proc_id.t);
  w

let bounce_diag m =
  List.find_opt
    (function Monitor.Bounce_livelock _ -> true | _ -> false)
    (Monitor.diagnostics m)

let test_monitor_flags_algorithm_1_bounce () =
  let w = bounce_world ~algorithm:Hope_core.Control.Algorithm_1 () in
  let m = Monitor.create () in
  (* ~dep:true arms the replace-churn detector: an Algorithm-1 bounce
     never flips AID state, it orbits Replace messages. *)
  Monitor.attach ~dep:true m (Engine.obs w.engine);
  (match Scheduler.run ~max_events:50_000 w.sched with
  | Hope_sim.Engine.Event_limit -> ()
  | reason ->
    Alcotest.failf "expected livelock, got %a" Hope_sim.Engine.pp_stop_reason
      reason);
  match bounce_diag m with
  | Some (Monitor.Bounce_livelock { flips; at; _ }) ->
    Alcotest.(check bool) "threshold honoured" true
      (flips >= Monitor.default_config.Monitor.replace_churn);
    Alcotest.(check bool) "flagged mid-run" true (at < Monitor.now m)
  | _ -> Alcotest.failf "monitor missed the Algorithm-1 bounce livelock"

let test_monitor_reports_bounce_before_cycle_cut () =
  let w = bounce_world ~algorithm:Hope_core.Control.Algorithm_2 () in
  let obs = Engine.obs w.engine in
  Recorder.enable obs;
  (* Lowered threshold: Algorithm 2 cuts this two-cycle after a handful
     of Replace hops, and the monitor's whole point is to speak up
     before the runtime saves the day on its own. *)
  let config = { Monitor.default_config with replace_churn = 2 } in
  let m = Monitor.create ~config () in
  Monitor.attach ~dep:true m obs;
  quiesce w;
  check_all_terminated w;
  check_invariants w;
  Alcotest.(check bool) "cycle was cut" true (Runtime.cycle_cuts w.rt >= 1);
  Alcotest.(check int) "monitor counted the cuts" (Runtime.cycle_cuts w.rt)
    (Monitor.cycle_cuts m);
  let first_cut =
    List.filter_map
      (fun (e : Obs_event.t) ->
        match e.Obs_event.payload with
        | Obs_event.Cycle_cut _ -> Some e.Obs_event.time
        | _ -> None)
      (Recorder.events obs)
    |> function
    | [] -> Alcotest.failf "no cycle-cut event in the store"
    | t :: _ -> t
  in
  match bounce_diag m with
  | Some (Monitor.Bounce_livelock { at; _ }) ->
    Alcotest.(check bool) "diagnosed before the cycle cut" true
      (at <= first_cut)
  | _ -> Alcotest.failf "monitor missed the bounce Algorithm 2 resolved"

(* --------------------------------------------------------------- *)
(* the governor vs the injected bounce                              *)
(* --------------------------------------------------------------- *)

module Adversary = Hope_gov.Adversary

(* The PR-6 acceptance pair. Ungoverned, the Algorithm-1 mutual
   speculative affirm is a genuine livelock: the run burns its whole
   event budget and the monitor flags the bounce. Governed, the
   churn-driven cycle cut resolves the two-cycle, every interval
   commits, and no bounce diagnostic ever fires. Same world, same
   seed — the governor is the only difference. *)
let test_governor_off_bounce_livelocks () =
  let o = Adversary.run ~governed:false Adversary.Bounce in
  Alcotest.(check bool) "never quiesces" false o.Adversary.quiesced;
  Alcotest.(check bool) "monitor flags the livelock" true
    o.Adversary.bounce_flagged;
  Alcotest.(check int) "nothing commits" 0 o.Adversary.finalized

let test_governor_on_bounce_commits () =
  let o = Adversary.run ~governed:true Adversary.Bounce in
  Alcotest.(check bool) "quiesces" true o.Adversary.quiesced;
  Alcotest.(check bool) "legal configuration" true o.Adversary.legal;
  Alcotest.(check bool) "full invariant suite holds" true o.Adversary.consistent;
  Alcotest.(check bool) "no bounce diagnostic" false o.Adversary.bounce_flagged;
  Alcotest.(check int) "both speculative intervals commit" 2
    o.Adversary.finalized;
  Alcotest.(check bool) "resolution was a forced cut" true
    (o.Adversary.forced_cuts >= 1)

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          test "60 random scenarios hold the invariants" test_many_seeds;
          test "bit-for-bit deterministic" test_chaos_deterministic;
          test "all runtime configurations" test_chaos_with_all_configs;
          test "era costs and varied latencies" test_chaos_with_costs_and_latencies;
        ] );
      ( "injected-bounce",
        [
          test "monitor flags the algorithm-1 livelock"
            test_monitor_flags_algorithm_1_bounce;
          test "monitor reports the bounce before the cycle cut"
            test_monitor_reports_bounce_before_cycle_cut;
        ] );
      ( "governed-bounce",
        [
          test "governor off: livelock, diagnostic trips"
            test_governor_off_bounce_livelocks;
          test "governor on: every interval commits"
            test_governor_on_bounce_commits;
        ] );
    ]
