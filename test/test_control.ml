(* Tests for the Control state machine: Replace processing per Figure 10
   (Algorithm 1) and Figure 15 (Algorithm 2 with UDO cycle detection),
   rollback targeting, and the finalize cascade. *)

open Hope_types
module History = Hope_core.History
module Control = Hope_core.Control

let test name f = Alcotest.test_case name `Quick f

let owner = Proc_id.of_int 1
let aid i = Aid.of_proc (Proc_id.of_int (100 + i))
let aids l = Aid.Set.of_list (List.map aid l)

let push h ido = History.push h ~kind:History.Explicit ~ido:(aids ido) ~now:0.0

let no_cut _ _ = Alcotest.fail "unexpected cycle cut"
let count_cuts cuts _iid a = cuts := a :: !cuts

let replace ?(algorithm = Control.Algorithm_2) ?(on_cycle_cut = no_cut) h ~target
    ~sender ~ido =
  Control.handle_replace algorithm h ~target ~sender:(aid sender) ~ido:(aids ido)
    ~on_cycle_cut

let guesses actions =
  List.filter_map
    (function
      | Control.Send_guess { aid; iid } -> Some (aid, iid)
      | Control.Finalized _ | Control.Rolled_back _ -> None)
    actions

let finalized actions =
  List.filter_map
    (function
      | Control.Finalized itv -> Some (Interval_id.seq itv.History.iid)
      | Control.Send_guess _ | Control.Rolled_back _ -> None)
    actions

(* --------------------------- Replace ------------------------------ *)

let test_replace_empty_finalizes () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let actions = replace h ~target:a.History.iid ~sender:1 ~ido:[] in
  Alcotest.(check (list int)) "interval finalized" [ 0 ] (finalized actions);
  Alcotest.(check int) "history empty" 0 (History.depth h)

let test_replace_substitutes_and_guesses () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let actions = replace h ~target:a.History.iid ~sender:1 ~ido:[ 2; 3 ] in
  Alcotest.(check bool) "ido rewritten" true
    (Aid.Set.equal a.History.ido (aids [ 2; 3 ]));
  Alcotest.(check int) "registered with both replacements" 2
    (List.length (guesses actions));
  Alcotest.(check (list int)) "nothing finalized" [] (finalized actions)

let test_replace_stale_target_ignored () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  ignore (History.truncate_from h a.History.iid);
  let actions = replace h ~target:a.History.iid ~sender:1 ~ido:[] in
  Alcotest.(check int) "ignored" 0 (List.length actions)

let test_replace_unknown_sender_ignored () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let actions = replace h ~target:a.History.iid ~sender:9 ~ido:[ 2 ] in
  Alcotest.(check int) "ignored" 0 (List.length actions);
  Alcotest.(check bool) "ido unchanged" true
    (Aid.Set.equal a.History.ido (aids [ 1 ]))

let test_replace_existing_dep_not_reregistered () =
  let h = History.create owner in
  let a = push h [ 1; 2 ] in
  let actions = replace h ~target:a.History.iid ~sender:1 ~ido:[ 2 ] in
  (* 2 is already a dependency: no new Guess, and 1 disappears. *)
  Alcotest.(check int) "no new registration" 0 (List.length (guesses actions));
  Alcotest.(check bool) "ido is {2}" true (Aid.Set.equal a.History.ido (aids [ 2 ]))

let test_finalize_cascade_respects_order () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let b = push h [ 2 ] in
  (* Resolve the newer interval first: it must wait for the older one. *)
  let actions = replace h ~target:b.History.iid ~sender:2 ~ido:[] in
  Alcotest.(check (list int)) "nothing finalized yet" [] (finalized actions);
  Alcotest.(check int) "both live" 2 (History.depth h);
  (* Now resolve the older one: both finalize, oldest first. *)
  let actions = replace h ~target:a.History.iid ~sender:1 ~ido:[] in
  Alcotest.(check (list int)) "cascade, oldest first" [ 0; 1 ] (finalized actions);
  Alcotest.(check int) "history empty" 0 (History.depth h)

(* ------------------------ UDO cycle detection --------------------- *)

let test_algorithm_2_records_udo () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  ignore (replace h ~target:a.History.iid ~sender:1 ~ido:[ 2 ]);
  Alcotest.(check bool) "sender moved to UDO" true
    (Aid.Set.equal a.History.udo (aids [ 1 ]))

let test_algorithm_2_cuts_cycle () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let cuts = ref [] in
  (* Walk 1 -> 2, then 2 -> 1: the second replacement is an AID we used
     to depend on — a cycle. It must be discarded, emptying the IDO and
     finalizing the interval (Figure 15). *)
  ignore (replace h ~target:a.History.iid ~sender:1 ~ido:[ 2 ]);
  let actions =
    replace h ~on_cycle_cut:(count_cuts cuts) ~target:a.History.iid ~sender:2
      ~ido:[ 1 ]
  in
  Alcotest.(check int) "one cut" 1 (List.length !cuts);
  Alcotest.(check (list int)) "interval finalized by the cut" [ 0 ]
    (finalized actions)

let test_algorithm_1_no_udo_no_cut () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  ignore
    (replace ~algorithm:Control.Algorithm_1 h ~target:a.History.iid ~sender:1
       ~ido:[ 2 ]);
  Alcotest.(check bool) "no UDO under Algorithm 1" true
    (Aid.Set.is_empty a.History.udo);
  (* The cyclic replacement is accepted again: the bounce of §5.3. *)
  let actions =
    replace ~algorithm:Control.Algorithm_1 h ~target:a.History.iid ~sender:2
      ~ido:[ 1 ]
  in
  Alcotest.(check int) "re-registered with the cycle AID" 1
    (List.length (guesses actions));
  Alcotest.(check bool) "still depends on 1" true
    (Aid.Set.equal a.History.ido (aids [ 1 ]))

let test_self_cycle_cut () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let cuts = ref [] in
  (* An AID replaced by itself (self-affirm while dependent): 1 -> {1}. *)
  let actions =
    replace h ~on_cycle_cut:(count_cuts cuts) ~target:a.History.iid ~sender:1
      ~ido:[ 1 ]
  in
  Alcotest.(check int) "self-cycle cut" 1 (List.length !cuts);
  Alcotest.(check (list int)) "finalized" [ 0 ] (finalized actions)

(* ---------------------------- Rebind ------------------------------ *)

let test_rebind_rolls_back_rewired () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let _b = push h [ 2 ] in
  (* a walked through 1 (rewired to 3); the affirm behind that rewiring
     is revoked: a — and its successor — must re-execute. *)
  ignore (replace h ~target:a.History.iid ~sender:1 ~ido:[ 3 ]);
  let actions = Control.handle_rebind h ~target:a.History.iid ~sender:(aid 1) in
  (match actions with
  | [ Control.Rolled_back { target; rolled; reason } ] ->
    Alcotest.(check int) "rolls at the rewired interval" 0
      (Interval_id.seq target.History.iid);
    Alcotest.(check int) "suffix included" 2 (List.length rolled);
    Alcotest.(check bool) "revocation reason" true (reason = Control.Revocation)
  | _ -> Alcotest.fail "expected one Rolled_back");
  Alcotest.(check int) "history cleared" 0 (History.depth h)

let test_rebind_ignores_unrewired () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  (* a still depends on 1 directly — no rewiring happened. *)
  let actions = Control.handle_rebind h ~target:a.History.iid ~sender:(aid 1) in
  Alcotest.(check int) "no-op" 0 (List.length actions);
  Alcotest.(check int) "interval untouched" 1 (History.depth h)

let test_rebind_ignores_dead_target () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  ignore (replace h ~target:a.History.iid ~sender:1 ~ido:[ 3 ]);
  ignore (History.truncate_from h a.History.iid);
  let actions = Control.handle_rebind h ~target:a.History.iid ~sender:(aid 1) in
  Alcotest.(check int) "stale rebind ignored" 0 (List.length actions)

(* --------------------------- Rollback ----------------------------- *)

let rolled_back actions =
  List.filter_map
    (function
      | Control.Rolled_back { target; rolled; reason } ->
        Some
          ( Interval_id.seq target.History.iid,
            List.map (fun itv -> Interval_id.seq itv.History.iid) rolled,
            reason )
      | Control.Send_guess _ | Control.Finalized _ -> None)
    actions

let test_rollback_truncates_suffix () =
  let h = History.create owner in
  let _a = push h [ 1 ] in
  let b = push h [ 2 ] in
  let _c = push h [ 2; 3 ] in
  let actions = Control.handle_rollback h ~target:b.History.iid ~denied:(aid 2) in
  (match rolled_back actions with
  | [ (target, rolled, reason) ] ->
    Alcotest.(check int) "target" 1 target;
    Alcotest.(check (list int)) "suffix rolled" [ 1; 2 ] rolled;
    Alcotest.(check bool) "denial recorded" true
      (reason = Control.Denial (aid 2))
  | _ -> Alcotest.fail "expected one Rolled_back");
  Alcotest.(check int) "only the oldest survives" 1 (History.depth h)

let test_rollback_retargets_earliest_dependent () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  let b = push h [ 1; 2 ] in
  (* The denial of 1 addressed interval b, but interval a also depends on
     1 (inheritance): the rollback must start at a. *)
  let actions = Control.handle_rollback h ~target:b.History.iid ~denied:(aid 1) in
  (match rolled_back actions with
  | [ (target, rolled, _) ] ->
    Alcotest.(check int) "retargeted to the earliest dependent"
      (Interval_id.seq a.History.iid) target;
    Alcotest.(check (list int)) "everything rolled" [ 0; 1 ] rolled
  | _ -> Alcotest.fail "expected one Rolled_back");
  Alcotest.(check int) "history empty" 0 (History.depth h)

let test_rollback_stale_ignored () =
  let h = History.create owner in
  let a = push h [ 1 ] in
  ignore (History.truncate_from h a.History.iid);
  let actions = Control.handle_rollback h ~target:a.History.iid ~denied:(aid 1) in
  Alcotest.(check int) "duplicate rollback ignored" 0 (List.length actions)

(* --------------------------- property ----------------------------- *)

(* Random interleavings of Replace/Rollback messages never break the
   structural invariants: live intervals stay ordered, IDO and UDO stay
   disjoint under Algorithm 2, and every action refers to a live or
   just-removed interval. *)
let qcheck_control_robust =
  let open QCheck in
  let op_gen =
    Gen.oneof
      [
        Gen.return `Push;
        Gen.map2 (fun s i -> `Replace (s mod 6, [ i mod 6 ])) Gen.small_nat Gen.small_nat;
        Gen.map (fun s -> `Replace_empty (s mod 6)) Gen.small_nat;
        Gen.map (fun s -> `Rollback (s mod 6)) Gen.small_nat;
        Gen.map (fun s -> `Rebind (s mod 6)) Gen.small_nat;
      ]
  in
  Test.make ~name:"control: random message storms keep invariants" ~count:300
    (make ~print:(fun ops -> string_of_int (List.length ops))
       (Gen.list_size (Gen.int_range 1 60) op_gen))
    (fun ops ->
      let h = History.create owner in
      let cuts = ref [] in
      List.iter
        (fun op ->
          let target () =
            match History.current h with
            | Some itv -> Some itv.History.iid
            | None -> None
          in
          match op with
          | `Push -> ignore (push h [ 1; 2; 3 ])
          | `Replace (s, ido) -> (
            match target () with
            | Some t ->
              ignore
                (replace h ~on_cycle_cut:(count_cuts cuts) ~target:t ~sender:s ~ido)
            | None -> ())
          | `Replace_empty s -> (
            match target () with
            | Some t ->
              ignore (replace h ~on_cycle_cut:(count_cuts cuts) ~target:t ~sender:s ~ido:[])
            | None -> ())
          | `Rollback s -> (
            match target () with
            | Some t -> ignore (Control.handle_rollback h ~target:t ~denied:(aid s))
            | None -> ())
          | `Rebind s -> (
            match target () with
            | Some t -> ignore (Control.handle_rebind h ~target:t ~sender:(aid s))
            | None -> ()))
        ops;
      List.for_all
        (fun itv -> Aid.Set.disjoint itv.History.ido itv.History.udo)
        (History.live h)
      &&
      let seqs =
        List.map (fun itv -> Interval_id.seq itv.History.iid) (History.live h)
      in
      seqs = List.sort compare seqs)

let () =
  Alcotest.run "control"
    [
      ( "replace",
        [
          test "empty replacement finalizes" test_replace_empty_finalizes;
          test "substitutes and registers" test_replace_substitutes_and_guesses;
          test "stale target ignored" test_replace_stale_target_ignored;
          test "unknown sender ignored" test_replace_unknown_sender_ignored;
          test "existing dependency not re-registered"
            test_replace_existing_dep_not_reregistered;
          test "finalize cascade respects order" test_finalize_cascade_respects_order;
        ] );
      ( "cycles",
        [
          test "Algorithm 2 records UDO" test_algorithm_2_records_udo;
          test "Algorithm 2 cuts a 2-cycle" test_algorithm_2_cuts_cycle;
          test "Algorithm 1 bounces" test_algorithm_1_no_udo_no_cut;
          test "self-cycle cut" test_self_cycle_cut;
        ] );
      ( "rebind",
        [
          test "rolls back rewired intervals" test_rebind_rolls_back_rewired;
          test "ignores unrewired intervals" test_rebind_ignores_unrewired;
          test "ignores dead targets" test_rebind_ignores_dead_target;
        ] );
      ( "rollback",
        [
          test "truncates the suffix" test_rollback_truncates_suffix;
          test "retargets the earliest dependent"
            test_rollback_retargets_earliest_dependent;
          test "stale rollback ignored" test_rollback_stale_ignored;
          QCheck_alcotest.to_alcotest qcheck_control_robust;
        ] );
    ]
