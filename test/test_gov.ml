(* Governor subsystem: throttle hysteresis laws (QCheck), policy
   profiles, actuator plumbing, and the adversary scenarios. The
   headline bounce acceptance (governor-on resolves what governor-off
   cannot) lives in test_chaos.ml next to the monitor's bounce tests. *)

open Hope_types
module Throttle = Hope_gov.Throttle
module Policy = Hope_gov.Policy
module Governor = Hope_gov.Governor
module Adversary = Hope_gov.Adversary
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Runtime = Hope_core.Runtime
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Telemetry = Hope_sim.Telemetry
open Program.Syntax
open Test_support.Util

(* ------------------------------------------------------------------ *)
(* Throttle: hysteresis and decay laws                                  *)
(* ------------------------------------------------------------------ *)

(* A throttle driven by an arbitrary op sequence: advance the clock,
   add pressure, observe. The laws must hold along every trajectory. *)
let arbitrary_ops =
  QCheck.(
    list_of_size
      (Gen.int_range 1 60)
      (pair (float_bound_exclusive 0.05) (float_bound_exclusive 0.6)))

(* Once throttled, a key stays throttled for at least
   [min_hold = tau ln (high/low)] virtual time: the hysteresis band is
   an anti-oscillation guarantee, not a soft preference. *)
let qcheck_no_fast_oscillation =
  QCheck.Test.make ~name:"throttle: release never beats the decay constant"
    ~count:500 arbitrary_ops (fun ops ->
      let t = Throttle.create () in
      let hold = Throttle.min_hold t in
      let now = ref 0.0 in
      let tripped_at = ref None in
      List.iter
        (fun (dt, amount) ->
          now := !now +. dt;
          let before = Throttle.throttled t ~now:!now ~key:0 in
          (match (before, !tripped_at) with
          | false, Some at ->
            (* released between observations: the decay must account
               for at least the full hold *)
            if !now -. at < hold *. 0.999 then
              QCheck.Test.fail_reportf
                "released %.6fs after trip (min_hold %.6fs)" (!now -. at) hold;
            tripped_at := None
          | _ -> ());
          Throttle.bump t ~now:!now ~key:0 amount;
          if Throttle.throttled t ~now:!now ~key:0 && !tripped_at = None then
            tripped_at := Some !now)
        ops;
      true)

(* With no further pressure, every key decays back below the low
   watermark: quiescent traffic always returns to fully optimistic. *)
let qcheck_quiescent_decay =
  QCheck.Test.make ~name:"throttle: quiescence always decays to optimistic"
    ~count:500 arbitrary_ops (fun ops ->
      let t = Throttle.create () in
      let now = ref 0.0 in
      let total = ref 0.0 in
      List.iter
        (fun (dt, amount) ->
          now := !now +. dt;
          total := !total +. amount;
          Throttle.bump t ~now:!now ~key:0 amount)
        ops;
      (* An upper bound on the level is the undecayed sum of bumps;
         wait long enough for that to decay through the low mark. *)
      let horizon =
        !now +. (Throttle.tau t *. log ((!total +. 1.0) /. Throttle.low t)) +. 1e-9
      in
      (not (Throttle.throttled t ~now:horizon ~key:0))
      && Throttle.level t ~now:horizon ~key:0 <= Throttle.low t)

let test_throttle_basics () =
  let t = Throttle.create ~high:1.0 ~low:0.25 ~tau:0.1 () in
  Alcotest.(check bool) "fresh key optimistic" false
    (Throttle.throttled t ~now:0.0 ~key:7);
  Throttle.bump t ~now:0.0 ~key:7 1.0;
  Alcotest.(check bool) "tripped at high watermark" true
    (Throttle.throttled t ~now:0.0 ~key:7);
  (* still above low just before min_hold... *)
  let hold = Throttle.min_hold t in
  Alcotest.(check bool) "held before min_hold" true
    (Throttle.throttled t ~now:(hold *. 0.9) ~key:7);
  (* ...and released after it. *)
  Alcotest.(check bool) "released after min_hold" false
    (Throttle.throttled t ~now:(hold *. 1.01) ~key:7);
  Alcotest.(check int) "other keys untouched" 1 (Throttle.tracked t);
  Alcotest.check_raises "negative pressure rejected"
    (Invalid_argument "Throttle.bump: negative pressure") (fun () ->
      Throttle.bump t ~now:1.0 ~key:7 (-1.0))

(* The escalation loop reuses {!Throttle}, so a mode flip inherits the
   same hysteresis law — but at each policy's own watermarks, which sit
   far from the defaults (hybrid trips at 6.0). Drive a throttle built
   from every escalation-enabled profile's parameters and check a
   tripped mark never releases before the decay constant: an escalated
   AID cannot flap straight back to optimistic. *)
let qcheck_escalation_no_fast_oscillation =
  QCheck.Test.make ~name:"escalation: mode flips obey the hysteresis hold"
    ~count:200 arbitrary_ops (fun ops ->
      List.iter
        (fun p ->
          if Policy.escalation_enabled p then begin
            let t =
              Throttle.create ~high:p.Policy.escalate_high
                ~low:p.Policy.escalate_low ~tau:p.Policy.escalate_tau ()
            in
            let hold = Throttle.min_hold t in
            let now = ref 0.0 in
            let tripped_at = ref None in
            List.iter
              (fun (dt, amount) ->
                now := !now +. dt;
                (match (Throttle.throttled t ~now:!now ~key:0, !tripped_at) with
                | false, Some at ->
                  if !now -. at < hold *. 0.999 then
                    QCheck.Test.fail_reportf
                      "%s de-escalated %.6fs after the trip (min_hold %.6fs)"
                      p.Policy.name (!now -. at) hold;
                  tripped_at := None
                | _ -> ());
                (* scale the bump to the profile's trip mark so the
                   trajectory actually crosses it *)
                Throttle.bump t ~now:!now ~key:0
                  (amount *. p.Policy.escalate_high);
                if Throttle.throttled t ~now:!now ~key:0 && !tripped_at = None
                then tripped_at := Some !now)
              ops
          end)
        Policy.all;
      true)

let test_escalation_profile_flags () =
  Alcotest.(check bool) "default keeps escalation off" false
    (Policy.escalation_enabled Policy.default);
  Alcotest.(check bool) "hybrid enables escalation" true
    (Policy.escalation_enabled Policy.hybrid);
  List.iter
    (fun p ->
      if Policy.escalation_enabled p then begin
        Alcotest.(check bool)
          (p.Policy.name ^ " escalation watermarks ordered")
          true
          (0.0 < p.Policy.escalate_low
          && p.Policy.escalate_low < p.Policy.escalate_high);
        Alcotest.(check bool)
          (p.Policy.name ^ " queued waits are virtual-time bounded")
          true
          (p.Policy.acquire_bound > 0.0 && p.Policy.acquire_bound < infinity)
      end)
    Policy.all

let test_policy_profiles () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Policy.name ^ " watermarks ordered")
        true
        (0.0 < p.Policy.low_watermark
        && p.Policy.low_watermark < p.Policy.high_watermark);
      Alcotest.(check bool)
        (p.Policy.name ^ " cut bounds ordered")
        true
        (0 < p.Policy.cut_min && p.Policy.cut_min <= p.Policy.cut_init);
      match Policy.of_string p.Policy.name with
      | Ok p' -> Alcotest.(check string) "roundtrip" p.Policy.name p'.Policy.name
      | Error e -> Alcotest.fail e)
    Policy.all;
  Alcotest.(check bool) "unknown profile rejected" true
    (match Policy.of_string "bogus" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Actuator plumbing through a real world                               *)
(* ------------------------------------------------------------------ *)

let governed_world ?(policy = Policy.default) () =
  let w = make_world () in
  let tele = Telemetry.create ~deep:true ~recorder:(Engine.obs w.engine) () in
  Telemetry.install tele w.engine;
  let g = Governor.install ~policy w.rt ~tele in
  (w, tele, g)

(* A governed run with nothing wrong must behave exactly like an
   ungoverned one: no gating, no stalls, no forced cuts — and the
   runtime must report itself governed only while the hooks are in. *)
let test_governor_invisible_when_healthy () =
  let w, _tele, g = governed_world () in
  Alcotest.(check bool) "runtime governed" true (Runtime.governed w.rt);
  let oracle =
    Scheduler.spawn w.sched ~name:"oracle"
      (let rec loop () =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.affirm a in
           loop ()
         | _ -> loop ()
       in
       loop ())
  in
  ignore
    (Scheduler.spawn w.sched ~name:"worker"
       (let rec go n =
          if n = 0 then Program.return ()
          else
            let* x = Program.aid_init () in
            let* () = Program.send oracle (Value.Aid_v x) in
            let* ok = Program.guess x in
            Alcotest.(check bool) "speculation allowed" true ok;
            let* () = Program.compute 1e-4 in
            go (n - 1)
        in
        go 20)
      : Proc_id.t);
  quiesce w;
  check_invariants w;
  Alcotest.(check int) "no gating" 0 (Governor.guesses_gated g);
  Alcotest.(check int) "no stalls" 0 (Governor.send_stalls g);
  Alcotest.(check int) "no forced cuts" 0 (Governor.forced_cuts g);
  Alcotest.(check int) "nothing throttled" 0 (Governor.throttled_aids g);
  Governor.uninstall g;
  Alcotest.(check bool) "ungoverned after uninstall" false (Runtime.governed w.rt)

(* Denial pressure gates re-guesses: after enough denials on one AID,
   the governor answers [guess] pessimistically at the gate. *)
let test_denials_throttle_the_aid () =
  let w, _tele, g = governed_world () in
  let oracle =
    Scheduler.spawn w.sched ~name:"oracle"
      (let rec loop () =
         let* env = Program.recv () in
         match Envelope.value env with
         | Value.Aid_v a ->
           let* () = Program.compute 1e-3 in
           let* () = Program.deny a in
           loop ()
         | _ -> loop ()
       in
       loop ())
  in
  ignore
    (Scheduler.spawn w.sched ~name:"worker"
       (let* x = Program.aid_init () in
        let* () = Program.send oracle (Value.Aid_v x) in
        let* _ = Program.guess x in
        let* () = Program.compute 5e-3 in
        (* re-approach the same assumption after the denial landed *)
        let* ok = Program.guess x in
        Alcotest.(check bool) "denied AID not re-speculated" false ok;
        Program.return ())
      : Proc_id.t);
  quiesce w;
  Alcotest.(check bool) "denial observed" true (Governor.denials_observed g >= 1);
  Alcotest.(check bool) "AID throttled" true (Governor.throttled_aids g >= 1);
  check_invariants w

(* The governor's gauges ride the telemetry sampler into the registry
   and the OpenMetrics export. *)
let test_governor_gauges_exported () =
  let w, tele, _g = governed_world () in
  ignore
    (Scheduler.spawn w.sched ~name:"noop" (Program.compute 1e-3) : Proc_id.t);
  quiesce w;
  Telemetry.sample_now tele;
  let gauges = Metrics.gauges (Engine.metrics w.engine) in
  Alcotest.(check bool) "gov.cut_threshold gauge present" true
    (List.mem_assoc "gov.cut_threshold" gauges);
  Alcotest.(check bool) "gov.throttled_aids gauge present" true
    (List.mem_assoc "gov.throttled_aids" gauges);
  let om = Telemetry.openmetrics tele in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "openmetrics carries governor gauges" true
    (contains om "gov_cut_threshold")

(* Uninstall must detach the policy tick from the sampler
   ({!Telemetry.remove_pre_sample}): a detached governor's gauges stop
   refreshing. Poison a gauge after uninstall — a still-registered tick
   would overwrite the sentinel on the very next sample. *)
let test_uninstalled_gauges_stop_refreshing () =
  let w, tele, g = governed_world () in
  ignore
    (Scheduler.spawn w.sched ~name:"noop" (Program.compute 1e-3) : Proc_id.t);
  quiesce w;
  Telemetry.sample_now tele;
  let cut = Metrics.gauge (Engine.metrics w.engine) "gov.cut_threshold" in
  Alcotest.(check bool) "tick refreshed the gauge" true
    (Metrics.gauge_value cut > 0.0);
  Governor.uninstall g;
  Metrics.set_gauge cut (-1.0);
  Telemetry.sample_now tele;
  Alcotest.(check (float 0.0)) "gauge untouched after uninstall" (-1.0)
    (Metrics.gauge_value cut);
  (* a clean detach leaves the sampler reusable: a fresh governor's tick
     takes the slot over and the gauge refreshes again *)
  let g2 = Governor.install w.rt ~tele in
  Telemetry.sample_now tele;
  Alcotest.(check bool) "reinstalled governor refreshes again" true
    (Metrics.gauge_value cut > 0.0);
  Governor.uninstall g2

(* The escalation machinery must be invisible while idle: under the
   default policy (escalation off, nothing throttled) a governed run's
   chrome trace is byte-identical to the ungoverned run — the in-tree
   twin of the CI e1 determinism job. The workload speculates and rolls
   back, so the idle path is exercised, not avoided. *)
let test_idle_escalation_trace_byte_identical () =
  let run ~governed =
    let w = make_world () in
    let obs = Engine.obs w.engine in
    Hope_obs.Recorder.enable obs;
    let tele = Telemetry.create ~deep:true ~recorder:obs () in
    Telemetry.install tele w.engine;
    let g = if governed then Some (Governor.install w.rt ~tele) else None in
    let resolver =
      Scheduler.spawn w.sched ~node:1 ~name:"resolver"
        (let* env = Program.recv () in
         let aids = List.map Value.to_aid (Value.to_list (Envelope.value env)) in
         let* () = Program.compute 2e-3 in
         match aids with
         | x1 :: rest ->
           let* () = Program.deny x1 in
           Program.iter_list Program.affirm rest
         | [] -> Program.return ())
    in
    ignore
      (Scheduler.spawn w.sched ~name:"worker"
         (let* x1 = Program.aid_init () in
          let* x2 = Program.aid_init () in
          let* x3 = Program.aid_init () in
          let* () =
            Program.send resolver
              (Value.List [ Value.Aid_v x1; Value.Aid_v x2; Value.Aid_v x3 ])
          in
          let* _ = Program.guess x1 in
          let* _ = Program.guess x2 in
          let* _ = Program.guess x3 in
          Program.compute 1e-4)
        : Proc_id.t);
    quiesce w;
    check_invariants w;
    (match g with Some g -> Governor.uninstall g | None -> ());
    Hope_obs.Obs.export_string Hope_obs.Obs.Chrome (Hope_obs.Recorder.events obs)
  in
  let off = run ~governed:false in
  let on_ = run ~governed:true in
  Alcotest.(check bool) "speculation actually rolled back" true
    (String.length off > 64);
  Alcotest.(check string) "chrome trace byte-identical" off on_

(* ------------------------------------------------------------------ *)
(* Adversary scenarios                                                  *)
(* ------------------------------------------------------------------ *)

let test_adversary_deterministic () =
  List.iter
    (fun sc ->
      let a = Adversary.run ~seed:11 ~governed:true sc in
      let b = Adversary.run ~seed:11 ~governed:true sc in
      Alcotest.(check bool)
        (Adversary.scenario_name sc ^ " same seed, identical outcome")
        true (a = b))
    Adversary.all;
  let a = Adversary.run ~seed:11 ~governed:true Adversary.Corruption in
  let c = Adversary.run ~seed:12 ~governed:true Adversary.Corruption in
  Alcotest.(check bool) "different seed, different run" true
    (a.Adversary.events <> c.Adversary.events || a <> c)

let test_hostile_oracle () =
  let off = Adversary.run ~governed:false Adversary.Hostile_oracle in
  let on_ = Adversary.run ~governed:true Adversary.Hostile_oracle in
  Alcotest.(check bool) "ungoverned survives" true off.Adversary.legal;
  Alcotest.(check bool) "governed survives" true on_.Adversary.legal;
  Alcotest.(check bool) "oracle really hostile" true
    (off.Adversary.rolled_back >= 1);
  Alcotest.(check bool) "governor gated re-guesses" true
    (on_.Adversary.gated >= 1)

let test_corruption_recovery () =
  List.iter
    (fun governed ->
      let o = Adversary.run ~governed Adversary.Corruption in
      let tag = if governed then "governed" else "ungoverned" in
      Alcotest.(check bool) (tag ^ " recovered to legal configuration") true
        o.Adversary.legal;
      Alcotest.(check bool) (tag ^ " forged rollbacks landed") true
        (o.Adversary.rolled_back >= 3);
      Alcotest.(check bool) (tag ^ " recovery time measured") true
        (o.Adversary.recovery_vtime > 0.0))
    [ false; true ]

let test_flash_crowd_backpressure () =
  let off = Adversary.run ~governed:false Adversary.Flash_crowd in
  let on_ = Adversary.run ~governed:true Adversary.Flash_crowd in
  Alcotest.(check bool) "ungoverned survives" true off.Adversary.legal;
  Alcotest.(check bool) "governed survives" true on_.Adversary.legal;
  Alcotest.(check bool) "crowd outran the validator" true
    (off.Adversary.peak_open > Policy.default.Policy.window_limit);
  Alcotest.(check bool) "sends paid back-pressure" true
    (on_.Adversary.send_stalls >= 1);
  Alcotest.(check bool) "window bounded no worse than ungoverned" true
    (on_.Adversary.peak_open <= off.Adversary.peak_open)

let test_compaction_stress () =
  List.iter
    (fun governed ->
      let o = Adversary.run ~governed Adversary.Compaction_stress in
      let tag = if governed then "governed" else "ungoverned" in
      Alcotest.(check bool) (tag ^ " stays legal under mailbox churn") true
        o.Adversary.legal;
      Alcotest.(check bool) (tag ^ " retractions landed") true
        (o.Adversary.rolled_back >= 1);
      Alcotest.(check bool) (tag ^ " compaction epochs ran") true
        (o.Adversary.compactions >= 1);
      Alcotest.(check bool) (tag ^ " mailbox really churned") true
        (o.Adversary.arrivals_reclaimed >= 100))
    [ false; true ]

(* The hybrid escalation acceptance: the zipf-skewed storm on one guard
   AID trips the monitor ungoverned; under the hybrid policy the guard
   escalates to queued acquisition, the cascades flatten, and the run
   ends clean with every waiter drained (legal = quiesced + terminated +
   no live speculation). *)
let test_contention_storm () =
  let off = Adversary.run ~governed:false Adversary.Contention_storm in
  let on_ =
    Adversary.run ~governed:true ~policy:Policy.hybrid
      Adversary.Contention_storm
  in
  Alcotest.(check bool) "ungoverned survives (wait-freedom)" true
    off.Adversary.legal;
  Alcotest.(check bool) "monitor flags the storm" true
    off.Adversary.bounce_flagged;
  Alcotest.(check bool) "governed survives" true on_.Adversary.legal;
  Alcotest.(check int) "escalation clears the diagnostics" 0
    on_.Adversary.diagnostics;
  Alcotest.(check bool) "hot guard escalated" true
    (on_.Adversary.escalations >= 1);
  Alcotest.(check bool) "guesses parked in the acquisition queue" true
    (on_.Adversary.acquire_waits >= 1);
  Alcotest.(check bool) "speculation cascades flatten" true
    (on_.Adversary.peak_open < off.Adversary.peak_open);
  Alcotest.(check bool) "less speculative churn overall" true
    (on_.Adversary.guesses < off.Adversary.guesses)

let test_cross_shard_straggler () =
  let off = Adversary.run ~governed:false Adversary.Cross_shard_straggler in
  let on_ = Adversary.run ~governed:true Adversary.Cross_shard_straggler in
  List.iter
    (fun (tag, (o : Adversary.outcome)) ->
      Alcotest.(check bool) (tag ^ " quiesces") true o.Adversary.quiesced;
      Alcotest.(check bool) (tag ^ " legal") true o.Adversary.legal;
      Alcotest.(check bool)
        (tag ^ " full invariant suite")
        true o.Adversary.consistent;
      (* every off-shard burst undercuts the mirror's local virtual
         time, so the volleys must actually deny and roll work back ... *)
      Alcotest.(check bool)
        (tag ^ " straggler volleys rolled back")
        true
        (o.Adversary.rolled_back >= 3);
      (* ... but each cascade is bounded by the mirror's own open
         speculation — a volley can never undo more than the intervals
         the consumer had optimistically opened. *)
      Alcotest.(check bool)
        (tag ^ " cascade bounded by open speculation")
        true
        (o.Adversary.rolled_back <= o.Adversary.guesses))
    [ ("ungoverned", off); ("governed", on_) ]

let () =
  Alcotest.run "gov"
    [
      ( "throttle",
        [
          test "watermarks, hold, release" test_throttle_basics;
          QCheck_alcotest.to_alcotest qcheck_no_fast_oscillation;
          QCheck_alcotest.to_alcotest qcheck_quiescent_decay;
          QCheck_alcotest.to_alcotest qcheck_escalation_no_fast_oscillation;
        ] );
      ( "policy",
        [
          test "profiles well-formed" test_policy_profiles;
          test "escalation profile flags" test_escalation_profile_flags;
        ] );
      ( "actuators",
        [
          test "invisible on a healthy run" test_governor_invisible_when_healthy;
          test "denial pressure gates the AID" test_denials_throttle_the_aid;
          test "gauges exported" test_governor_gauges_exported;
          test "uninstall detaches the tick"
            test_uninstalled_gauges_stop_refreshing;
          test "idle escalation keeps the trace byte-identical"
            test_idle_escalation_trace_byte_identical;
        ] );
      ( "adversary",
        [
          test "fixed-seed determinism" test_adversary_deterministic;
          test "hostile oracle" test_hostile_oracle;
          test "corruption recovery" test_corruption_recovery;
          test "flash crowd back-pressure" test_flash_crowd_backpressure;
          test "compaction stress" test_compaction_stress;
          test "contention storm escalates" test_contention_storm;
          test "cross-shard straggler volleys" test_cross_shard_straggler;
        ] );
    ]
