(* Tests of the observability subsystem (lib/obs): span pairing under
   rollback, cascade-depth analytics, byte-for-byte deterministic Chrome
   export, GraphML well-formedness, the time-series rings, the online
   health monitor, and the OpenMetrics / flamegraph exporters. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Engine = Hope_sim.Engine
module Telemetry = Hope_sim.Telemetry
module Recorder = Hope_obs.Recorder
module Event = Hope_obs.Event
module Span = Hope_obs.Span
module Analytics = Hope_obs.Analytics
module Monitor = Hope_obs.Monitor
module Timeseries = Hope_obs.Timeseries
module Obs = Hope_obs.Obs
open Program.Syntax
open Test_support.Util

(* The canonical cascade scenario: the worker registers three AIDs with a
   definite resolver (sends happen before any guess, so they are never
   retracted), then opens three nested assumptions. The resolver denies
   the innermost dependency's root — the earliest interval — so all three
   intervals are discarded by one rollback; the re-execution resumes the
   denied guess with false and re-opens (and finalizes) the other two. *)
let spawn_cascade w ~node =
  let resolver =
    Scheduler.spawn w.sched ~node ~name:"resolver"
      (let* env = Program.recv () in
       let aids = List.map Value.to_aid (Value.to_list (Envelope.value env)) in
       let* () = Program.compute 0.05 in
       match aids with
       | x1 :: rest ->
         let* () = Program.deny x1 in
         Program.iter_list Program.affirm rest
       | [] -> Program.return ())
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x1 = Program.aid_init () in
       let* x2 = Program.aid_init () in
       let* x3 = Program.aid_init () in
       let* () =
         Program.send resolver
           (Value.List [ Value.Aid_v x1; Value.Aid_v x2; Value.Aid_v x3 ])
       in
       let* _ = Program.guess x1 in
       let* _ = Program.guess x2 in
       let* _ = Program.guess x3 in
       Program.return ())
  in
  ()

let run_cascade ?(seed = 42) ?latency ?(node = 0) () =
  let w = make_world ~seed ?latency () in
  let obs = Engine.obs w.engine in
  Recorder.enable obs;
  spawn_cascade w ~node;
  quiesce w;
  check_all_terminated w;
  check_invariants w;
  Recorder.events obs

(* ------------------- span open/close pairing ---------------------- *)

let test_span_pairing () =
  let events = run_cascade () in
  let spans = Span.of_events events in
  (* First run opens 3 nested intervals; the re-execution resumes the
     denied guess with false (no interval) and re-opens the other two. *)
  Alcotest.(check int) "five spans" 5 (List.length spans);
  List.iter
    (fun (s : Span.t) ->
      (match s.Span.close with
      | Span.Still_open -> Alcotest.failf "span left open"
      | Span.Finalized | Span.Rolled_back _ -> ());
      match s.Span.closed_at with
      | None -> Alcotest.failf "closed span without a close time"
      | Some c ->
        if c < s.Span.opened_at then
          Alcotest.failf "span closes before it opens")
    spans;
  let rolled =
    List.filter
      (fun (s : Span.t) ->
        match s.Span.close with Span.Rolled_back _ -> true | _ -> false)
      spans
  in
  let finalized =
    List.filter
      (fun (s : Span.t) -> s.Span.close = Span.Finalized)
      spans
  in
  Alcotest.(check int) "three rolled back" 3 (List.length rolled);
  Alcotest.(check int) "two finalized" 2 (List.length finalized);
  (* Every discarded span records the size of the cascade that took it. *)
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check int) "cascade size on rolled span" 3 s.Span.cascade)
    rolled;
  (* Nesting: the first execution's spans sit at depths 1, 2, 3. *)
  let depths =
    List.map (fun (s : Span.t) -> s.Span.depth) rolled |> List.sort compare
  in
  Alcotest.(check (list int)) "nested depths" [ 1; 2; 3 ] depths

(* ------------------- cascade-depth analytics ---------------------- *)

let test_cascade_analytics () =
  let events = run_cascade () in
  let a = Analytics.analyse events in
  Alcotest.(check int) "intervals opened" 5 a.Analytics.intervals_opened;
  Alcotest.(check int) "rolled back" 3 a.Analytics.rolled_back;
  Alcotest.(check int) "finalized" 2 a.Analytics.finalized;
  Alcotest.(check int) "none left open" 0 a.Analytics.still_open;
  Alcotest.(check int) "one cascade" 1 a.Analytics.cascades;
  Alcotest.(check int) "three-deep cascade" 3 a.Analytics.max_cascade;
  Alcotest.(check (list (pair int int)))
    "cascade histogram" [ (3, 1) ] a.Analytics.cascade_hist;
  Alcotest.(check int) "max nesting depth" 3 a.Analytics.max_depth;
  if a.Analytics.wasted_ratio <= 0.0 || a.Analytics.wasted_ratio >= 1.0 then
    Alcotest.failf "wasted ratio out of range: %f" a.Analytics.wasted_ratio;
  match a.Analytics.critical_path with
  | None -> Alcotest.failf "no critical path on a run with intervals"
  | Some cp ->
    Alcotest.(check int) "critical path depth" 3 cp.Analytics.path_depth;
    Alcotest.(check int) "critical path length" 3 (List.length cp.Analytics.path)

(* ------------------- deterministic Chrome export ------------------ *)

let test_chrome_determinism () =
  let j1 = Obs.export_string Obs.Chrome (run_cascade ()) in
  let j2 = Obs.export_string Obs.Chrome (run_cascade ()) in
  Alcotest.(check string) "byte-identical across runs" j1 j2;
  (* Shape: a single JSON object wrapping a traceEvents array of span
     ("X") and instant ("i") records. *)
  Alcotest.(check bool) "opens a trace object" true
    (String.length j1 > 16 && String.sub j1 0 16 = "{\"traceEvents\":[");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has complete events" true (contains "\"ph\":\"X\"" j1);
  Alcotest.(check bool) "has instant events" true (contains "\"ph\":\"i\"" j1);
  (* With the resolver on a remote node and a jittered link, the seed
     reaches the latencies: different seeds must produce different
     captures (the export is a function of the run, not a constant). *)
  let jitter = Hope_net.Latency.Lognormal { median = 2e-3; sigma = 0.5 } in
  let j3 =
    Obs.export_string Obs.Chrome (run_cascade ~latency:jitter ~node:1 ())
  in
  let j4 =
    Obs.export_string Obs.Chrome
      (run_cascade ~seed:7 ~latency:jitter ~node:1 ())
  in
  Alcotest.(check bool) "seed changes the trace" false (String.equal j3 j4)

(* ------------------- GraphML well-formedness ---------------------- *)

let count_substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go acc i =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

let test_graphml_wellformed () =
  let g = Obs.export_string Obs.Graphml (run_cascade ()) in
  Alcotest.(check bool) "xml declaration" true
    (String.sub g 0 5 = "<?xml");
  Alcotest.(check int) "one graphml element" 1 (count_substring "<graphml " g);
  Alcotest.(check int) "graphml closed" 1 (count_substring "</graphml>" g);
  Alcotest.(check int) "one graph element" 1 (count_substring "<graph " g);
  Alcotest.(check int) "graph closed" 1 (count_substring "</graph>" g);
  let nodes = count_substring "<node " g and node_ends = count_substring "</node>" g in
  let edges = count_substring "<edge " g and edge_ends = count_substring "</edge>" g in
  Alcotest.(check int) "node tags balanced" nodes node_ends;
  Alcotest.(check int) "edge tags balanced" edges edge_ends;
  (* 5 interval nodes + 3 AID nodes. *)
  Alcotest.(check int) "eight nodes" 8 nodes;
  if edges = 0 then Alcotest.failf "no edges in the causal DAG";
  Alcotest.(check int) "data tags balanced" (count_substring "<data " g)
    (count_substring "</data>" g);
  (* The denial shows up as rolled-back edges from the denied AID. *)
  Alcotest.(check int) "three rolled-back edges" 3
    (count_substring ">rolled-back</data>" g);
  (* Determinism holds for this exporter too. *)
  Alcotest.(check string) "byte-identical across runs" g
    (Obs.export_string Obs.Graphml (run_cascade ()))

(* ------------------- recorder & facade basics --------------------- *)

let test_recorder_disabled_is_noop () =
  let r = Recorder.create () in
  Recorder.emit r ~time:1.0 ~proc:(Proc_id.of_int 0)
    (Event.Sim_stop { reason = "test" });
  Alcotest.(check int) "nothing captured while disabled" 0 (Recorder.size r);
  Recorder.enable r;
  Recorder.emit r ~time:2.0 ~proc:(Proc_id.of_int 0)
    (Event.Sim_stop { reason = "test" });
  Alcotest.(check int) "captured once enabled" 1 (Recorder.size r)

let test_format_names () =
  List.iter
    (fun f ->
      match Obs.format_of_string (Obs.format_name f) with
      | Ok f' when f' = f -> ()
      | Ok _ | Error _ -> Alcotest.failf "format name does not round-trip")
    Obs.all_formats;
  match Obs.format_of_string "protobuf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "unknown format accepted"

let test_summary_mentions_cascade () =
  let s = Obs.export_string Obs.Summary (run_cascade ()) in
  let contains needle hay = count_substring needle hay > 0 in
  Alcotest.(check bool) "counts rollback cascades" true
    (contains "rollback-cascade" s);
  Alcotest.(check bool) "reports max cascade depth" true
    (contains "(max depth" s)

(* ------------------- time-series rings ---------------------------- *)

let test_timeseries_ring () =
  let ts = Timeseries.create ~capacity:4 ~stride:1.0 () in
  let s = Timeseries.series ts "hope_test_ring" in
  for i = 1 to 10 do
    Timeseries.record s ~time:(float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "length capped at capacity" 4 (Timeseries.length s);
  Alcotest.(check int) "total counts overwritten points" 10 (Timeseries.total s);
  (* A full ring keeps the newest points, read back oldest-first. *)
  List.iteri
    (fun k i ->
      let t, v = Timeseries.nth s k in
      Alcotest.(check (float 0.0)) "nth time" (float_of_int i) t;
      Alcotest.(check (float 0.0)) "nth value" (float_of_int (i * i)) v)
    [ 7; 8; 9; 10 ];
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "to_list matches nth"
    (List.init 4 (Timeseries.nth s))
    (Timeseries.to_list s);
  (match Timeseries.nth s 4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "out-of-range nth accepted");
  (* Sources are read exactly once per sample; re-registering a name
     replaces the thunk rather than forking the series. *)
  let calls = ref 0 in
  Timeseries.add_source ts "hope_test_src"
    (fun () ->
      incr calls;
      1.0);
  Timeseries.sample ts ~time:11.0;
  Timeseries.sample ts ~time:12.0;
  Alcotest.(check int) "source read once per sample" 2 !calls;
  Alcotest.(check int) "samples counted" 2 (Timeseries.samples ts);
  let src = Timeseries.series ts "hope_test_src" in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "sampled points" [ (11.0, 1.0); (12.0, 1.0) ]
    (Timeseries.to_list src)

(* ------------------- online health monitor ------------------------ *)

let replay_into m events =
  List.iter
    (fun (e : Event.t) ->
      Monitor.observe m ~time:e.Event.time ~proc:e.Event.proc e.Event.payload)
    events

(* The monitor folds the same stream the span/analytics layers consume
   post hoc, so its aggregates must agree with [Analytics.analyse]. *)
let test_monitor_replay_matches_analytics () =
  let events = run_cascade () in
  let m = Monitor.create () in
  replay_into m events;
  Alcotest.(check int) "intervals opened" 5 (Monitor.intervals_opened m);
  Alcotest.(check int) "finalized" 2 (Monitor.intervals_finalized m);
  Alcotest.(check int) "rolled back" 3 (Monitor.intervals_rolled_back m);
  Alcotest.(check int) "none left open" 0 (Monitor.open_intervals m);
  Alcotest.(check int) "one cascade" 1 (Monitor.cascades m);
  Alcotest.(check int) "three-deep cascade" 3 (Monitor.max_cascade m);
  Alcotest.(check int) "peak open" 3 (Monitor.peak_open_intervals m);
  Alcotest.(check int) "aids created" 3 (Monitor.aids_created m);
  Alcotest.(check int) "all aids definite at the end" 0 (Monitor.live_aids m);
  if Monitor.wasted_vtime m <= 0.0 then
    Alcotest.failf "cascade run recorded no wasted vtime";
  if Monitor.committed_vtime m <= 0.0 then
    Alcotest.failf "finalized intervals recorded no committed vtime";
  Alcotest.(check bool) "healthy under default thresholds" true
    (Monitor.healthy m);
  Alcotest.(check int) "diagnostics_count matches the list"
    (List.length (Monitor.diagnostics m))
    (Monitor.diagnostics_count m)

let test_monitor_cascade_runaway () =
  let events = run_cascade () in
  let config = { Monitor.default_config with cascade_limit = 2 } in
  let m = Monitor.create ~config () in
  replay_into m events;
  Alcotest.(check bool) "unhealthy" false (Monitor.healthy m);
  match
    List.filter
      (function Monitor.Cascade_runaway _ -> true | _ -> false)
      (Monitor.diagnostics m)
  with
  | [ Monitor.Cascade_runaway { size; at; _ } ] ->
    Alcotest.(check int) "flagged cascade size" 3 size;
    if at <= 0.0 then Alcotest.failf "diagnostic carries no timestamp"
  | ds -> Alcotest.failf "expected one cascade-runaway, got %d" (List.length ds)

let test_monitor_stall_check () =
  let m = Monitor.create () in
  let proc = Proc_id.of_int 0 in
  Monitor.observe m ~time:1.0 ~proc
    (Event.Interval_open
       {
         iid = Interval_id.make ~owner:proc ~seq:1;
         kind = Event.Explicit;
         ido = Aid.Set.empty;
       });
  Monitor.check_stalls m ~now:2.0;
  Alcotest.(check bool) "young interval not flagged" true (Monitor.healthy m);
  Monitor.check_stalls m ~now:100.0;
  (match Monitor.diagnostics m with
  | [ Monitor.Stalled_interval { open_for; _ } ] ->
    Alcotest.(check (float 1e-9)) "open_for" 99.0 open_for
  | _ -> Alcotest.failf "expected exactly one stalled-interval diagnostic");
  (* Flagged at most once, even if it stays open. *)
  Monitor.check_stalls m ~now:200.0;
  Alcotest.(check int) "no re-flag" 1 (Monitor.diagnostics_count m)

(* ------------------- OpenMetrics export --------------------------- *)

let run_telemetry ?(seed = 42) () =
  let w = make_world ~seed () in
  let tele = Telemetry.create ~stride:1e-2 ~recorder:(Engine.obs w.engine) () in
  Telemetry.install tele w.engine;
  spawn_cascade w ~node:0;
  quiesce w;
  check_all_terminated w;
  (tele, w)

let test_openmetrics_determinism () =
  let tele1, _ = run_telemetry () in
  let m1 = Telemetry.openmetrics tele1 in
  let tele2, _ = run_telemetry () in
  let m2 = Telemetry.openmetrics tele2 in
  Alcotest.(check string) "byte-identical across runs" m1 m2;
  let contains needle hay = count_substring needle hay > 0 in
  let n = String.length m1 in
  Alcotest.(check bool) "ends with the EOF marker" true
    (n >= 6 && String.sub m1 (n - 6) 6 = "# EOF\n");
  Alcotest.(check bool) "monitor gauges exported" true
    (contains "# TYPE hope_monitor_cascades gauge" m1);
  Alcotest.(check bool) "engine series exported" true
    (contains "hope_engine_events_executed" m1);
  Alcotest.(check bool) "registry counters exported as counters" true
    (contains "_total" m1)

let test_monitor_via_telemetry () =
  (* The tap wiring end to end: the monitor attached by Telemetry.create
     sees the run without the recorder's event store being enabled. *)
  let tele, w = run_telemetry () in
  let m = Telemetry.monitor tele in
  Alcotest.(check bool) "store stayed off" true
    (Recorder.events (Engine.obs w.engine) = []);
  Alcotest.(check int) "monitor saw the cascade" 1 (Monitor.cascades m);
  Alcotest.(check int) "monitor saw all intervals" 5 (Monitor.intervals_opened m)

(* ------------------- flamegraph export ---------------------------- *)

let test_flame_determinism () =
  let f1 = Obs.export_string Obs.Flame (run_cascade ()) in
  let f2 = Obs.export_string Obs.Flame (run_cascade ()) in
  Alcotest.(check string) "byte-identical across runs" f1 f2;
  let contains needle hay = count_substring needle hay > 0 in
  Alcotest.(check bool) "has committed stacks" true (contains "committed;" f1);
  Alcotest.(check bool) "has wasted stacks" true (contains "wasted;" f1);
  (* Collapsed-stack shape: every line is "frame;frame;... <count>". *)
  List.iter
    (fun line ->
      if line <> "" then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "line without a sample count: %s" line
        | Some i -> (
          let count = String.sub line (i + 1) (String.length line - i - 1) in
          match int_of_string_opt count with
          | Some n when n > 0 -> ()
          | _ -> Alcotest.failf "bad sample count %S in %s" count line))
    (String.split_on_char '\n' f1)

(* ------------------- exporter exhaustiveness ---------------------- *)

(* Every payload constructor must survive every exporter: a new event
   type that an exporter drops or mis-buckets shows up here, not in a
   confused trace three PRs later. [Event.samples] carries exactly one
   payload per constructor, so the length check fails the moment a
   constructor is added without a sample. *)
let test_exporter_exhaustiveness () =
  Alcotest.(check int) "one sample per constructor" 20
    (List.length Event.samples);
  let events =
    List.mapi
      (fun i payload ->
        {
          Event.seq = i;
          time = 0.1 *. float_of_int (i + 1);
          proc = Proc_id.of_int 1;
          payload;
        })
      Event.samples
  in
  let contains needle hay = count_substring needle hay > 0 in
  List.iter
    (fun fmt ->
      if String.length (Obs.export_string fmt events) = 0 then
        Alcotest.failf "%s export dropped the stream" (Obs.format_name fmt))
    Obs.all_formats;
  (* chrome: the committed cross-shard message yields a flow arrow *)
  let chrome = Obs.export_string Obs.Chrome events in
  Alcotest.(check bool) "chrome flow start" true
    (contains "\"ph\":\"s\"" chrome);
  Alcotest.(check bool) "chrome flow finish binds enclosing slice" true
    (contains "\"bp\":\"e\"" chrome);
  (* graphml: the commit becomes a provenance node *)
  let graphml = Obs.export_string Obs.Graphml events in
  Alcotest.(check bool) "graphml commit node" true
    (contains "<node id=\"c:0\">" graphml);
  (* flame: shard events land as virtual-time-weighted frames *)
  let flame = Obs.export_string Obs.Flame events in
  Alcotest.(check bool) "flame shard transit" true
    (contains "shard-transit" flame);
  Alcotest.(check bool) "flame shard rollback" true
    (contains "shard-rollback" flame);
  (* summary: the per-type census names every constructor *)
  let summary = Obs.export_string Obs.Summary events in
  List.iter
    (fun payload ->
      let name = Event.type_name payload in
      if not (contains name summary) then
        Alcotest.failf "summary drops %s" name)
    Event.samples;
  (* analytics: the shard pass fired and attributed the straggler *)
  let a = Analytics.analyse events in
  match a.Analytics.shard with
  | None -> Alcotest.failf "analytics missed the shard events"
  | Some s ->
    Alcotest.(check int) "commits" 1 s.Analytics.shard_commits;
    Alcotest.(check int) "stragglers" 1 s.Analytics.shard_stragglers;
    Alcotest.(check int) "wasted" 2 s.Analytics.shard_wasted_events;
    Alcotest.(check int) "compactions" 1 s.Analytics.shard_compactions;
    Alcotest.(check (list (pair (triple int int (float 1e-9)) int)))
      "attribution table"
      [ ((0, 3, 1.5), 2) ]
      s.Analytics.shard_attribution

(* ------------------- labeled OpenMetrics -------------------------- *)

let find_pos sub hay =
  let n = String.length hay and m = String.length sub in
  let rec go i =
    if i + m > n then Alcotest.failf "missing %S in exposition" sub
    else if String.sub hay i m = sub then i
    else go (i + 1)
  in
  go 0

let test_openmetrics_labels () =
  let module Om = Hope_obs.Export_openmetrics in
  let instruments =
    [
      Om.Counter { name = "shard.events"; labels = [ ("shard", "10") ]; value = 20 };
      Om.Counter { name = "shard.events"; labels = []; value = 33 };
      Om.Counter { name = "shard.events"; labels = [ ("shard", "2") ]; value = 13 };
      Om.Gauge { name = "hope.gvt_lag"; labels = []; value = 0.25 };
    ]
  in
  let out = Om.to_string ~instruments () in
  (* one family: labeled and unlabeled entries share a single header *)
  Alcotest.(check int) "one HELP line" 1
    (count_substring "# HELP shard_events_total" out);
  Alcotest.(check int) "one TYPE line" 1
    (count_substring "# TYPE shard_events_total counter" out);
  (* entry order: unlabeled aggregate first, then shard labels compared
     numerically (2 before 10, not lexicographic) *)
  let p_agg = find_pos "shard_events_total 33" out in
  let p2 = find_pos "shard_events_total{shard=\"2\"} 13" out in
  let p10 = find_pos "shard_events_total{shard=\"10\"} 20" out in
  Alcotest.(check bool) "aggregate before labeled" true (p_agg < p2);
  Alcotest.(check bool) "numeric label order" true (p2 < p10);
  Alcotest.(check int) "gauge rendered" 1
    (count_substring "hope_gvt_lag 0.25" out);
  (* byte-determinism of the rendering itself *)
  Alcotest.(check string) "render is a pure function" out
    (Om.to_string ~instruments ())

(* ------------------- parallel health detectors -------------------- *)

let mk_sample ?(gvt = 0.0) ?(lvt = 0.0) ?(events = 0) ?(stragglers = 0)
    ?(rolled = 0) ?(depth = 0) ?(annih = 0) ?(spins = 0) ?(occ = 0) ?(peak = 0)
    shard =
  {
    Monitor.sh_shard = shard;
    sh_gvt = gvt;
    sh_lvt = lvt;
    sh_events = events;
    sh_stragglers = stragglers;
    sh_rolled = rolled;
    sh_rollback_depth = depth;
    sh_annihilations = annih;
    sh_full_spins = spins;
    sh_mailbox_occ = occ;
    sh_mailbox_peak = peak;
  }

let shard_diags m =
  List.filter
    (function
      | Monitor.Gvt_stall _ | Monitor.Shard_imbalance _
      | Monitor.Mailbox_backpressure _ | Monitor.Annihilation_storm _ ->
        true
      | _ -> false)
    (Monitor.diagnostics m)

let test_monitor_gvt_stall () =
  let m = Monitor.create () in
  Monitor.observe_shards m
    [
      mk_sample ~gvt:1.0 ~lvt:1.0 ~events:100 0;
      mk_sample ~gvt:1.0 ~lvt:2.5 ~events:5100 0;
      (* still stalled: must not re-flag the same shard *)
      mk_sample ~gvt:1.0 ~lvt:3.0 ~events:10200 0;
    ];
  (match shard_diags m with
  | [ Monitor.Gvt_stall { shard = 0; events; gvt; _ } ] ->
    Alcotest.(check int) "events while frozen" 5000 events;
    Alcotest.(check (float 1e-9)) "frozen gvt" 1.0 gvt
  | ds -> Alcotest.failf "expected one gvt-stall, got %d diags" (List.length ds));
  (* healthy: same event rate but GVT keeps moving *)
  let h = Monitor.create () in
  Monitor.observe_shards h
    [
      mk_sample ~gvt:1.0 ~lvt:1.0 ~events:100 0;
      mk_sample ~gvt:2.0 ~lvt:2.5 ~events:5100 0;
      mk_sample ~gvt:3.0 ~lvt:3.5 ~events:10200 0;
    ];
  Alcotest.(check int) "healthy run unflagged" 0 (List.length (shard_diags h))

let test_monitor_shard_imbalance () =
  let epoch g k =
    [
      mk_sample ~gvt:g ~lvt:(g +. 0.5) ~events:(400 * k) 0;
      mk_sample ~gvt:g ~lvt:(g +. 0.1) ~events:(10 * k) 1;
    ]
  in
  let m = Monitor.create () in
  Monitor.observe_shards m (List.concat [ epoch 1.0 1; epoch 2.0 2; epoch 3.0 3 ]);
  (match shard_diags m with
  | [ Monitor.Shard_imbalance { fast = 0; slow = 1; ratio; epochs = 3; _ } ] ->
    if ratio < Monitor.default_config.Monitor.imbalance_ratio then
      Alcotest.failf "flagged ratio %.1f below threshold" ratio
  | ds ->
    Alcotest.failf "expected one shard-imbalance, got %d diags" (List.length ds));
  (* flagged once even if the skew persists *)
  Monitor.observe_shards m (epoch 4.0 4);
  Alcotest.(check int) "no re-flag" 1 (List.length (shard_diags m));
  (* healthy: balanced shards under the same load *)
  let h = Monitor.create () in
  let balanced g k =
    [
      mk_sample ~gvt:g ~lvt:(g +. 0.2) ~events:(400 * k) 0;
      mk_sample ~gvt:g ~lvt:(g +. 0.3) ~events:(380 * k) 1;
    ]
  in
  Monitor.observe_shards h
    (List.concat [ balanced 1.0 1; balanced 2.0 2; balanced 3.0 3 ]);
  Alcotest.(check int) "balanced run unflagged" 0 (List.length (shard_diags h))

let test_monitor_backpressure_and_storm () =
  let m = Monitor.create () in
  Monitor.observe_shards m
    [
      mk_sample ~gvt:1.0 ~events:100 ~spins:0 ~annih:0 0;
      mk_sample ~gvt:2.0 ~events:200 ~spins:5000 ~annih:600 0;
    ];
  let spins, storms =
    List.partition
      (function Monitor.Mailbox_backpressure _ -> true | _ -> false)
      (shard_diags m)
  in
  (match spins with
  | [ Monitor.Mailbox_backpressure { shard = 0; spins; _ } ] ->
    Alcotest.(check int) "spin delta" 5000 spins
  | _ -> Alcotest.failf "expected one mailbox-backpressure diagnostic");
  (match storms with
  | [ Monitor.Annihilation_storm { shard = 0; annihilations; _ } ] ->
    Alcotest.(check int) "annihilation delta" 600 annihilations
  | _ -> Alcotest.failf "expected one annihilation-storm diagnostic");
  (* healthy deltas under both thresholds *)
  let h = Monitor.create () in
  Monitor.observe_shards h
    [
      mk_sample ~gvt:1.0 ~events:100 0;
      mk_sample ~gvt:2.0 ~events:200 ~spins:100 ~annih:50 0;
    ];
  Alcotest.(check int) "healthy run unflagged" 0 (List.length (shard_diags h))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          test "open/close pairing under rollback" test_span_pairing;
          test "cascade analytics" test_cascade_analytics;
        ] );
      ( "exports",
        [
          test "chrome export is deterministic" test_chrome_determinism;
          test "graphml is well-formed" test_graphml_wellformed;
          test "summary reports cascades" test_summary_mentions_cascade;
          test "openmetrics is deterministic" test_openmetrics_determinism;
          test "flamegraph is deterministic" test_flame_determinism;
          test "every constructor survives every exporter"
            test_exporter_exhaustiveness;
          test "labeled openmetrics families" test_openmetrics_labels;
        ] );
      ( "shard-health",
        [
          test "gvt-stall diagnostic" test_monitor_gvt_stall;
          test "shard-imbalance diagnostic" test_monitor_shard_imbalance;
          test "backpressure and annihilation-storm diagnostics"
            test_monitor_backpressure_and_storm;
        ] );
      ( "telemetry",
        [
          test "ring buffers wrap and read oldest-first" test_timeseries_ring;
          test "monitor replay matches analytics"
            test_monitor_replay_matches_analytics;
          test "cascade-runaway diagnostic" test_monitor_cascade_runaway;
          test "stalled-interval diagnostic" test_monitor_stall_check;
          test "monitor rides the tap without the store"
            test_monitor_via_telemetry;
        ] );
      ( "recorder",
        [
          test "disabled recorder is a no-op" test_recorder_disabled_is_noop;
          test "format names round-trip" test_format_names;
        ] );
    ]
