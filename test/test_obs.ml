(* Tests of the observability subsystem (lib/obs): span pairing under
   rollback, cascade-depth analytics, byte-for-byte deterministic Chrome
   export, and GraphML well-formedness. *)

open Hope_types
module Program = Hope_proc.Program
module Scheduler = Hope_proc.Scheduler
module Engine = Hope_sim.Engine
module Recorder = Hope_obs.Recorder
module Event = Hope_obs.Event
module Span = Hope_obs.Span
module Analytics = Hope_obs.Analytics
module Obs = Hope_obs.Obs
open Program.Syntax
open Test_support.Util

(* The canonical cascade scenario: the worker registers three AIDs with a
   definite resolver (sends happen before any guess, so they are never
   retracted), then opens three nested assumptions. The resolver denies
   the innermost dependency's root — the earliest interval — so all three
   intervals are discarded by one rollback; the re-execution resumes the
   denied guess with false and re-opens (and finalizes) the other two. *)
let run_cascade ?(seed = 42) ?latency ?(node = 0) () =
  let w = make_world ~seed ?latency () in
  let obs = Engine.obs w.engine in
  Recorder.enable obs;
  let resolver =
    Scheduler.spawn w.sched ~node ~name:"resolver"
      (let* env = Program.recv () in
       let aids = List.map Value.to_aid (Value.to_list (Envelope.value env)) in
       let* () = Program.compute 0.05 in
       match aids with
       | x1 :: rest ->
         let* () = Program.deny x1 in
         Program.iter_list Program.affirm rest
       | [] -> Program.return ())
  in
  let _worker =
    Scheduler.spawn w.sched ~name:"worker"
      (let* x1 = Program.aid_init () in
       let* x2 = Program.aid_init () in
       let* x3 = Program.aid_init () in
       let* () =
         Program.send resolver
           (Value.List [ Value.Aid_v x1; Value.Aid_v x2; Value.Aid_v x3 ])
       in
       let* _ = Program.guess x1 in
       let* _ = Program.guess x2 in
       let* _ = Program.guess x3 in
       Program.return ())
  in
  quiesce w;
  check_all_terminated w;
  check_invariants w;
  Recorder.events obs

(* ------------------- span open/close pairing ---------------------- *)

let test_span_pairing () =
  let events = run_cascade () in
  let spans = Span.of_events events in
  (* First run opens 3 nested intervals; the re-execution resumes the
     denied guess with false (no interval) and re-opens the other two. *)
  Alcotest.(check int) "five spans" 5 (List.length spans);
  List.iter
    (fun (s : Span.t) ->
      (match s.Span.close with
      | Span.Still_open -> Alcotest.failf "span left open"
      | Span.Finalized | Span.Rolled_back _ -> ());
      match s.Span.closed_at with
      | None -> Alcotest.failf "closed span without a close time"
      | Some c ->
        if c < s.Span.opened_at then
          Alcotest.failf "span closes before it opens")
    spans;
  let rolled =
    List.filter
      (fun (s : Span.t) ->
        match s.Span.close with Span.Rolled_back _ -> true | _ -> false)
      spans
  in
  let finalized =
    List.filter
      (fun (s : Span.t) -> s.Span.close = Span.Finalized)
      spans
  in
  Alcotest.(check int) "three rolled back" 3 (List.length rolled);
  Alcotest.(check int) "two finalized" 2 (List.length finalized);
  (* Every discarded span records the size of the cascade that took it. *)
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check int) "cascade size on rolled span" 3 s.Span.cascade)
    rolled;
  (* Nesting: the first execution's spans sit at depths 1, 2, 3. *)
  let depths =
    List.map (fun (s : Span.t) -> s.Span.depth) rolled |> List.sort compare
  in
  Alcotest.(check (list int)) "nested depths" [ 1; 2; 3 ] depths

(* ------------------- cascade-depth analytics ---------------------- *)

let test_cascade_analytics () =
  let events = run_cascade () in
  let a = Analytics.analyse events in
  Alcotest.(check int) "intervals opened" 5 a.Analytics.intervals_opened;
  Alcotest.(check int) "rolled back" 3 a.Analytics.rolled_back;
  Alcotest.(check int) "finalized" 2 a.Analytics.finalized;
  Alcotest.(check int) "none left open" 0 a.Analytics.still_open;
  Alcotest.(check int) "one cascade" 1 a.Analytics.cascades;
  Alcotest.(check int) "three-deep cascade" 3 a.Analytics.max_cascade;
  Alcotest.(check (list (pair int int)))
    "cascade histogram" [ (3, 1) ] a.Analytics.cascade_hist;
  Alcotest.(check int) "max nesting depth" 3 a.Analytics.max_depth;
  if a.Analytics.wasted_ratio <= 0.0 || a.Analytics.wasted_ratio >= 1.0 then
    Alcotest.failf "wasted ratio out of range: %f" a.Analytics.wasted_ratio;
  match a.Analytics.critical_path with
  | None -> Alcotest.failf "no critical path on a run with intervals"
  | Some cp ->
    Alcotest.(check int) "critical path depth" 3 cp.Analytics.path_depth;
    Alcotest.(check int) "critical path length" 3 (List.length cp.Analytics.path)

(* ------------------- deterministic Chrome export ------------------ *)

let test_chrome_determinism () =
  let j1 = Obs.export_string Obs.Chrome (run_cascade ()) in
  let j2 = Obs.export_string Obs.Chrome (run_cascade ()) in
  Alcotest.(check string) "byte-identical across runs" j1 j2;
  (* Shape: a single JSON object wrapping a traceEvents array of span
     ("X") and instant ("i") records. *)
  Alcotest.(check bool) "opens a trace object" true
    (String.length j1 > 16 && String.sub j1 0 16 = "{\"traceEvents\":[");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has complete events" true (contains "\"ph\":\"X\"" j1);
  Alcotest.(check bool) "has instant events" true (contains "\"ph\":\"i\"" j1);
  (* With the resolver on a remote node and a jittered link, the seed
     reaches the latencies: different seeds must produce different
     captures (the export is a function of the run, not a constant). *)
  let jitter = Hope_net.Latency.Lognormal { median = 2e-3; sigma = 0.5 } in
  let j3 =
    Obs.export_string Obs.Chrome (run_cascade ~latency:jitter ~node:1 ())
  in
  let j4 =
    Obs.export_string Obs.Chrome
      (run_cascade ~seed:7 ~latency:jitter ~node:1 ())
  in
  Alcotest.(check bool) "seed changes the trace" false (String.equal j3 j4)

(* ------------------- GraphML well-formedness ---------------------- *)

let count_substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go acc i =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

let test_graphml_wellformed () =
  let g = Obs.export_string Obs.Graphml (run_cascade ()) in
  Alcotest.(check bool) "xml declaration" true
    (String.sub g 0 5 = "<?xml");
  Alcotest.(check int) "one graphml element" 1 (count_substring "<graphml " g);
  Alcotest.(check int) "graphml closed" 1 (count_substring "</graphml>" g);
  Alcotest.(check int) "one graph element" 1 (count_substring "<graph " g);
  Alcotest.(check int) "graph closed" 1 (count_substring "</graph>" g);
  let nodes = count_substring "<node " g and node_ends = count_substring "</node>" g in
  let edges = count_substring "<edge " g and edge_ends = count_substring "</edge>" g in
  Alcotest.(check int) "node tags balanced" nodes node_ends;
  Alcotest.(check int) "edge tags balanced" edges edge_ends;
  (* 5 interval nodes + 3 AID nodes. *)
  Alcotest.(check int) "eight nodes" 8 nodes;
  if edges = 0 then Alcotest.failf "no edges in the causal DAG";
  Alcotest.(check int) "data tags balanced" (count_substring "<data " g)
    (count_substring "</data>" g);
  (* The denial shows up as rolled-back edges from the denied AID. *)
  Alcotest.(check int) "three rolled-back edges" 3
    (count_substring ">rolled-back</data>" g);
  (* Determinism holds for this exporter too. *)
  Alcotest.(check string) "byte-identical across runs" g
    (Obs.export_string Obs.Graphml (run_cascade ()))

(* ------------------- recorder & facade basics --------------------- *)

let test_recorder_disabled_is_noop () =
  let r = Recorder.create () in
  Recorder.emit r ~time:1.0 ~proc:(Proc_id.of_int 0)
    (Event.Sim_stop { reason = "test" });
  Alcotest.(check int) "nothing captured while disabled" 0 (Recorder.size r);
  Recorder.enable r;
  Recorder.emit r ~time:2.0 ~proc:(Proc_id.of_int 0)
    (Event.Sim_stop { reason = "test" });
  Alcotest.(check int) "captured once enabled" 1 (Recorder.size r)

let test_format_names () =
  List.iter
    (fun f ->
      match Obs.format_of_string (Obs.format_name f) with
      | Ok f' when f' = f -> ()
      | Ok _ | Error _ -> Alcotest.failf "format name does not round-trip")
    Obs.all_formats;
  match Obs.format_of_string "protobuf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "unknown format accepted"

let test_summary_mentions_cascade () =
  let s = Obs.export_string Obs.Summary (run_cascade ()) in
  let contains needle hay = count_substring needle hay > 0 in
  Alcotest.(check bool) "counts rollback cascades" true
    (contains "rollback-cascade" s);
  Alcotest.(check bool) "reports max cascade depth" true
    (contains "(max depth" s)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          test "open/close pairing under rollback" test_span_pairing;
          test "cascade analytics" test_cascade_analytics;
        ] );
      ( "exports",
        [
          test "chrome export is deterministic" test_chrome_determinism;
          test "graphml is well-formed" test_graphml_wellformed;
          test "summary reports cascades" test_summary_mentions_cascade;
        ] );
      ( "recorder",
        [
          test "disabled recorder is a no-op" test_recorder_disabled_is_noop;
          test "format names round-trip" test_format_names;
        ] );
    ]
