(* Tests for the process substrate: the DSL and the scheduler, without
   any HOPE semantics (no runtime installed unless noted). *)

open Hope_types
module Engine = Hope_sim.Engine
module Scheduler = Hope_proc.Scheduler
module Program = Hope_proc.Program
open Program.Syntax
open Test_support.Util

let test name f = Alcotest.test_case name `Quick f

let make ?(sched_config = Scheduler.free_config) ?latency () =
  make_substrate ~sched_config ?latency ()

(* --------------------------- basics ------------------------------- *)

let test_terminates () =
  let engine, sched = make () in
  let p = Scheduler.spawn sched ~name:"noop" (Program.return ()) in
  ignore (Engine.run engine);
  Alcotest.(check bool) "terminated" true (Scheduler.status sched p = Scheduler.Terminated);
  Alcotest.(check bool) "all terminated" true (Scheduler.all_terminated sched)

let test_compute_advances_time () =
  let engine, sched = make () in
  let p =
    Scheduler.spawn sched ~name:"worker"
      (let* () = Program.compute 1.5 in
       let* () = Program.compute 0.5 in
       Program.return ())
  in
  ignore (Engine.run engine);
  Alcotest.(check (option (float 1e-9))) "completion time" (Some 2.0)
    (Scheduler.completion_time sched p)

let test_ping_pong () =
  let engine, sched = make ~latency:(Hope_net.Latency.Constant 1e-3) () in
  let log = ref [] in
  let ponger =
    Scheduler.spawn sched ~node:1 ~name:"ponger"
      (let* env = Program.recv () in
       let* () = Program.lift (fun () -> log := "pong-recv" :: !log) in
       Program.send env.Envelope.src (Value.String "pong"))
  in
  let _pinger =
    Scheduler.spawn sched ~node:0 ~name:"pinger"
      (let* () = Program.send ponger (Value.String "ping") in
       let* v = Program.recv_value () in
       Program.lift (fun () -> log := Value.to_string_payload v :: !log))
  in
  ignore (Engine.run engine);
  Alcotest.(check (list string)) "round trip" [ "pong-recv"; "pong" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "two hops" 2e-3 (Engine.now engine)

let test_recv_filters () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* v1 =
         Program.recv_where (fun e -> Envelope.value e = Value.String "second")
       in
       let* () =
         Program.lift (fun () -> got := Value.to_string_payload (Envelope.value v1) :: !got)
       in
       let* v2 = Program.recv_value () in
       Program.lift (fun () -> got := Value.to_string_payload v2 :: !got))
  in
  let _sender =
    Scheduler.spawn sched ~name:"sender"
      (let* () = Program.send receiver (Value.String "first") in
       Program.send receiver (Value.String "second"))
  in
  ignore (Engine.run engine);
  Alcotest.(check (list string)) "filtered then leftover" [ "second"; "first" ]
    (List.rev !got)

let test_recv_from () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver_box = ref None in
  let a =
    Scheduler.spawn sched ~name:"a"
      (let* () = Program.compute 0.01 in
       let* r = Program.lift (fun () -> Option.get !receiver_box) in
       Program.send r (Value.Int 1))
  in
  let _b =
    Scheduler.spawn sched ~name:"b"
      (let* r = Program.lift (fun () -> Option.get !receiver_box) in
       Program.send r (Value.Int 2))
  in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (* Wait specifically for a's message even though b's arrives first. *)
      (let* v = Program.recv_value_from a in
       Program.lift (fun () -> got := Value.to_int v :: !got))
  in
  receiver_box := Some receiver;
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "selective receive" [ 1 ] !got

let test_recv_opt () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* first = Program.recv_opt () in
       let* () = Program.lift (fun () -> got := ("empty", first = None) :: !got) in
       let* () = Program.compute 0.1 in
       let* second = Program.recv_opt () in
       Program.lift (fun () -> got := ("full", second <> None) :: !got))
  in
  let _sender =
    Scheduler.spawn sched ~name:"sender"
      (let* () = Program.compute 0.01 in
       Program.send receiver Value.Unit)
  in
  ignore (Engine.run engine);
  Alcotest.(check (list (pair string bool)))
    "non-blocking receive" [ ("empty", true); ("full", true) ] (List.rev !got)

let test_spawn_hierarchy () =
  let engine, sched = make () in
  let log = ref [] in
  let _parent =
    Scheduler.spawn sched ~name:"parent"
      (let* child =
         Program.spawn "child"
           (let* v = Program.recv_value () in
            Program.lift (fun () -> log := Value.to_int v :: !log))
       in
       Program.send child (Value.Int 99))
  in
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "child ran" [ 99 ] !log;
  Alcotest.(check bool) "all terminated" true (Scheduler.all_terminated sched)

let test_random_ops_deterministic () =
  let run () =
    let engine, sched = make () in
    let out = ref [] in
    ignore
      (Scheduler.spawn sched ~name:"r"
         (Program.for_ 1 10 (fun _ ->
              let* f = Program.random_float 1.0 in
              let* b = Program.random_bernoulli 0.5 in
              let* i = Program.random_int 100 in
              Program.lift (fun () -> out := (f, b, i) :: !out)))
        : Proc_id.t);
    ignore (Engine.run engine);
    !out
  in
  Alcotest.(check bool) "two identical runs agree" true (run () = run ())

let test_fuel_exhaustion () =
  let engine, sched = make ~sched_config:{ Scheduler.free_config with fuel = 100 } () in
  let rec spin () =
    let* () = Program.incr_counter "spin" in
    spin ()
  in
  ignore (Scheduler.spawn sched ~name:"spinner" (spin ()) : Proc_id.t);
  Alcotest.(check bool) "non-terminating pure loop detected" true
    (try
       ignore (Engine.run engine);
       false
     with Scheduler.Process_failure _ | Scheduler.Fuel_exhausted _ -> true)

let test_costs_accounted () =
  let config =
    { Scheduler.free_config with send_cost = 10e-3; recv_cost = 5e-3 }
  in
  let engine, sched = make ~sched_config:config ~latency:(Hope_net.Latency.Constant 1e-3) () in
  let receiver =
    Scheduler.spawn sched ~node:1 ~name:"receiver"
      (let* _ = Program.recv () in
       Program.return ())
  in
  let sender =
    Scheduler.spawn sched ~node:0 ~name:"sender" (Program.send receiver Value.Unit)
  in
  ignore (Engine.run engine);
  (* sender: send_cost; receiver: latency + recv_cost *)
  Alcotest.(check (option (float 1e-9))) "sender paid send cost" (Some 10e-3)
    (Scheduler.completion_time sched sender);
  Alcotest.(check (option (float 1e-9))) "receiver paid latency + recv cost"
    (Some 6e-3)
    (Scheduler.completion_time sched receiver)

let test_send_user_injection () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* v = Program.recv_value () in
       Program.lift (fun () -> got := Value.to_int v :: !got))
  in
  Scheduler.send_user sched ~src:(Proc_id.of_int 999) ~dst:receiver
    ~tags:Aid.Set.empty (Value.Int 5);
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "injected message received" [ 5 ] !got

let test_hope_ops_require_runtime () =
  let engine, sched = make () in
  ignore
    (Scheduler.spawn sched ~name:"guesser"
       (let* x = Program.aid_init () in
        let* _ = Program.guess x in
        Program.return ())
      : Proc_id.t);
  Alcotest.(check bool) "raises without hooks" true
    (try
       ignore (Engine.run engine);
       false
     with Scheduler.Process_failure _ -> true)

(* Program combinator behaviour (executed, not just constructed). *)
let test_combinators () =
  let engine, sched = make () in
  let out = ref [] in
  ignore
    (Scheduler.spawn sched ~name:"combi"
       (let* () = Program.for_ 1 3 (fun i -> Program.lift (fun () -> out := i :: !out)) in
        let* () = Program.when_ false (Program.lift (fun () -> out := 99 :: !out)) in
        let* () = Program.when_ true (Program.lift (fun () -> out := 4 :: !out)) in
        let* () =
          Program.iter_list (fun i -> Program.lift (fun () -> out := i :: !out)) [ 5; 6 ]
        in
        let* () = Program.repeat 2 (Program.lift (fun () -> out := 7 :: !out)) in
        let* total = Program.fold 1 4 0 (fun acc i -> Program.return (acc + i)) in
        Program.lift (fun () -> out := total :: !out))
      : Proc_id.t);
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "combinators execute in order"
    [ 1; 2; 3; 4; 5; 6; 7; 7; 10 ] (List.rev !out)

let test_mark_writes_trace () =
  let engine, sched = make () in
  Hope_sim.Trace.enable (Engine.trace engine);
  ignore
    (Scheduler.spawn sched ~name:"marker"
       (let* () = Program.mark "phase" "started" in
        let* () = Program.compute 0.5 in
        Program.mark "phase" "finished")
      : Proc_id.t);
  ignore (Engine.run engine);
  let entries = Hope_sim.Trace.find (Engine.trace engine) ~category:"phase" in
  Alcotest.(check (list string)) "both marks recorded" [ "started"; "finished" ]
    (List.map (fun e -> e.Hope_sim.Trace.message) entries);
  Alcotest.(check bool) "timestamps recorded" true
    (match entries with
    | [ a; b ] -> a.Hope_sim.Trace.time = 0.0 && b.Hope_sim.Trace.time = 0.5
    | _ -> false)

let test_wire_trace_records_transmissions () =
  let engine, sched = make () in
  Hope_sim.Trace.enable (Engine.trace engine);
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* _ = Program.recv () in
       Program.return ())
  in
  ignore
    (Scheduler.spawn sched ~name:"sender" (Program.send receiver (Value.Int 9))
      : Proc_id.t);
  ignore (Engine.run engine);
  Alcotest.(check int) "one wire entry" 1
    (List.length (Hope_sim.Trace.find (Engine.trace engine) ~category:"wire"))

let test_recv_opt_with_filter () =
  let engine, sched = make () in
  let got = ref [] in
  let receiver =
    Scheduler.spawn sched ~name:"receiver"
      (let* () = Program.compute 0.1 in
       (* Both messages have arrived; pick only the matching one. *)
       let* m =
         Program.recv_opt_where (fun e -> Envelope.value e = Value.Int 2)
       in
       let* () =
         Program.lift (fun () ->
             got := (match m with Some e -> Value.to_int (Envelope.value e) | None -> -1) :: !got)
       in
       (* The other message is still there for a plain receive. *)
       let* v = Program.recv_value () in
       Program.lift (fun () -> got := Value.to_int v :: !got))
  in
  ignore
    (Scheduler.spawn sched ~name:"sender"
       (let* () = Program.send receiver (Value.Int 1) in
        Program.send receiver (Value.Int 2))
      : Proc_id.t);
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "filtered poll then leftover" [ 2; 1 ] (List.rev !got)

(* ------------- incremental rollback storage: oracle test ------------- *)

(* Model-based property for the journal/compaction storage layer. A
   random schedule of injections, speculative relay sends, rollbacks and
   finalizes drives the real scheduler, with hooks faking a minimal HOPE
   runtime (every tagged message opens an interval; rollback and
   finalize arrive from outside, as the runtime would issue them). The
   same schedule drives a naive eager-storage oracle in plain OCaml —
   full-scan flips, no journal, no compaction — and the two must agree
   on every observable: the consumed-value log, live checkpoints,
   journalled claims, and a mailbox residency bound of O(open
   speculation). *)
module Storage_oracle = struct
  type m_state = Free | Claimed of int | Definite | Dropped

  type m_arrival = {
    tag : Aid.t option;
    value : int;
    mutable st : m_state;
  }

  type model = {
    s_tag : Aid.t;  (** every relayed message carries this tag *)
    mutable arr : m_arrival list;  (** receiver mailbox, arrival order *)
    mutable stack : (int * m_arrival option) list;
        (** receiver's live intervals, newest first, with trigger *)
    mutable log : int list;  (** consumed values, newest first *)
    mutable seq : int;
    mutable cmds : m_arrival list;  (** sender's command mailbox *)
    mutable sends : m_arrival list;
        (** receiver arrivals journalled under the sender's interval *)
  }

  let create ~s_tag =
    { s_tag; arr = []; stack = []; log = []; seq = 0; cmds = []; sends = [] }

  (* The receiver consumes greedily in arrival order until nothing is
     free — exactly what its recv loop does between driver operations. *)
  let consume_loop m =
    List.iter
      (fun a ->
        if a.st = Free then begin
          (match a.tag with
          | Some _ ->
            m.seq <- m.seq + 1;
            m.stack <- (m.seq, Some a) :: m.stack;
            a.st <- Claimed m.seq
          | None -> (
            match m.stack with
            | (s, _) :: _ -> a.st <- Claimed s
            | [] -> a.st <- Definite));
          m.log <- a.value :: m.log
        end)
      m.arr

  let inject m ~tag v =
    m.arr <- m.arr @ [ { tag; value = v; st = Free } ];
    consume_loop m

  let send_via_s m v =
    let c = { tag = None; value = v; st = Free } in
    m.cmds <- m.cmds @ [ c ];
    c.st <- Claimed 0;
    let a = { tag = Some m.s_tag; value = v; st = Free } in
    m.arr <- m.arr @ [ a ];
    m.sends <- m.sends @ [ a ];
    consume_loop m

  (* Roll the receiver back to the interval at [pos] in the stack
     (0 = newest): flip every claim the rolled suffix holds, drop the
     target's trigger if the cause is its tag's denial, and re-consume. *)
  let flip_rolled m rolled_seqs =
    List.iter
      (fun a ->
        match a.st with
        | Claimed s when List.mem s rolled_seqs -> a.st <- Free
        | _ -> ())
      m.arr

  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []

  let rec drop n = function
    | _ :: rest when n > 0 -> drop (n - 1) rest
    | l -> l

  let r_rollback m pos ~denied =
    let rolled = take (pos + 1) m.stack in
    flip_rolled m (List.map fst rolled);
    (if denied then
       match List.nth m.stack pos with
       | _, Some a -> a.st <- Dropped
       | _, None -> ());
    m.stack <- drop (pos + 1) m.stack;
    consume_loop m

  (* One retraction landing at the receiver. A claim cascades: the
     consuming interval and everything newer roll back, then the message
     itself dies. No re-consumption yet — the batch completes first. *)
  let cancel m a =
    (match a.st with
    | Claimed s ->
      let pos =
        let rec go i = function
          | (s', _) :: rest -> if s' = s then i else go (i + 1) rest
          | [] -> invalid_arg "oracle: claim by unknown interval"
        in
        go 0 m.stack
      in
      flip_rolled m (List.map fst (take (pos + 1) m.stack));
      m.stack <- drop (pos + 1) m.stack;
      a.st <- Dropped
    | Free -> a.st <- Dropped
    | Definite | Dropped -> ())

  (* The sender rolls back: its journalled sends are retracted in send
     order, its command claims reopen, the receiver re-consumes what the
     cascades freed, and then the sender's re-execution re-relays every
     command — fresh messages that arrive after everything resident. *)
  let s_rollback m =
    List.iter (cancel m) m.sends;
    m.sends <- [];
    List.iter (fun c -> if c.st = Claimed 0 then c.st <- Free) m.cmds;
    consume_loop m;
    List.iter
      (fun c ->
        if c.st = Free then begin
          c.st <- Claimed 0;
          let a = { tag = Some m.s_tag; value = c.value; st = Free } in
          m.arr <- m.arr @ [ a ];
          m.sends <- m.sends @ [ a ]
        end)
      m.cmds;
    consume_loop m

  let finalize_oldest m =
    match List.rev m.stack with
    | [] -> ()
    | (s, _) :: _ ->
      List.iter (fun a -> if a.st = Claimed s then a.st <- Definite) m.arr;
      m.stack <- take (List.length m.stack - 1) m.stack

  let live m =
    List.length
      (List.filter
         (fun a -> match a.st with Free | Claimed _ -> true | _ -> false)
         m.arr)

  let claimed m =
    List.length
      (List.filter (fun a -> match a.st with Claimed _ -> true | _ -> false) m.arr)
end

let qcheck_storage_oracle =
  let gen =
    QCheck.(
      pair (int_range 1 10_000)
        (list_of_size Gen.(int_range 20 120) (int_range 0 99)))
  in
  QCheck.Test.make ~name:"journal storage matches the eager oracle" ~count:60 gen
    (fun (seed, ops) ->
      let engine, sched =
        make_substrate ~seed ~latency:(Hope_net.Latency.Constant 1e-3)
          ~fifo:true ~sched_config:Scheduler.free_config ()
      in
      let s_tag = Aid.of_proc (Proc_id.of_int 990) in
      let iid_seq = ref 0 in
      let r_stack = ref [] in
      let s_stack = ref [] in
      let real_log = ref [] in
      let r_pid =
        Scheduler.spawn sched ~node:0 ~name:"r"
          (let rec loop () =
             let* v = Program.recv_value () in
             let* () =
               Program.lift (fun () -> real_log := Value.to_int v :: !real_log)
             in
             loop ()
           in
           loop ())
      in
      let s_pid =
        Scheduler.spawn sched ~node:1 ~name:"s"
          (let* aid = Program.aid_init () in
           let* _ = Program.guess aid in
           let rec loop () =
             let* v = Program.recv_value () in
             let* () = Program.send r_pid v in
             loop ()
           in
           loop ())
      in
      let fresh_iid owner =
        incr iid_seq;
        Interval_id.make ~owner ~seq:!iid_seq
      in
      (* Split the live stack at [iid]: the rolled suffix, oldest first,
         and what survives. *)
      let cut_at iid stack =
        let rec go acc = function
          | [] -> invalid_arg "oracle driver: unknown interval"
          | x :: rest ->
            let acc = x :: acc in
            if Interval_id.equal x iid then (acc, rest) else go acc rest
        in
        go [] stack
      in
      Scheduler.set_hooks sched
        {
          Scheduler.h_tags =
            (fun pid ->
              if Proc_id.equal pid s_pid then Aid.Set.singleton s_tag
              else Aid.Set.empty);
          h_current =
            (fun pid ->
              let st = if Proc_id.equal pid s_pid then s_stack else r_stack in
              match !st with [] -> None | i :: _ -> Some i);
          h_aid_init = (fun _ -> Aid.of_proc (Proc_id.of_int 991));
          h_guess =
            (fun pid _ ->
              let iid = fresh_iid pid in
              s_stack := [ iid ];
              Scheduler.Speculate iid);
          h_send_delay = (fun _ -> 0.0);
          h_implicit =
            (fun pid _ ->
              let iid = fresh_iid pid in
              r_stack := iid :: !r_stack;
              Scheduler.Accept (Some iid));
          h_affirm = (fun _ _ -> ());
          h_deny = (fun _ _ -> ());
          h_free_of = (fun _ _ -> ());
          h_control = (fun ~self:_ ~src:_ _ -> ());
          h_cancelled =
            (fun ~self ~iid ~msg_id ->
              let rolled, rest = cut_at iid !r_stack in
              r_stack := rest;
              Scheduler.rollback sched self ~target:iid ~rolled
                ~cause:(Scheduler.Message_cancelled msg_id));
          h_spawned = (fun _ -> ());
          h_spawn_child = (fun ~parent:_ ~child:_ -> None);
          h_terminated = (fun _ -> ());
        };
      let m = Storage_oracle.create ~s_tag in
      let next_v = ref 0 in
      let tag_seq = ref 0 in
      let quiesce () =
        match Engine.run engine with
        | Hope_sim.Engine.Quiescent -> ()
        | r ->
          QCheck.Test.fail_reportf "not quiescent: %a" Engine.pp_stop_reason r
      in
      let compare_worlds () =
        if List.rev !real_log <> List.rev m.Storage_oracle.log then
          QCheck.Test.fail_reportf "consumption log diverged:@ real %a@ model %a"
            Format.(pp_print_list ~pp_sep:pp_print_space pp_print_int)
            (List.rev !real_log)
            Format.(pp_print_list ~pp_sep:pp_print_space pp_print_int)
            (List.rev m.Storage_oracle.log);
        let cks = Scheduler.open_checkpoints sched r_pid in
        if cks <> List.length m.Storage_oracle.stack then
          QCheck.Test.fail_reportf "checkpoints: real %d, model %d" cks
            (List.length m.Storage_oracle.stack);
        let entries = Scheduler.journal_entries sched r_pid in
        if entries <> Storage_oracle.claimed m then
          QCheck.Test.fail_reportf "receiver journal entries: real %d, model %d"
            entries (Storage_oracle.claimed m);
        let s_entries = Scheduler.journal_entries sched s_pid in
        let s_model =
          List.length
            (List.filter
               (fun c -> c.Storage_oracle.st = Storage_oracle.Claimed 0)
               m.Storage_oracle.cmds)
          + List.length m.Storage_oracle.sends
        in
        if s_entries <> s_model then
          QCheck.Test.fail_reportf "sender journal entries: real %d, model %d"
            s_entries s_model;
        let resident = Scheduler.arrivals_resident sched r_pid in
        let bound = max 64 ((2 * Storage_oracle.live m) + 1) in
        if resident > bound then
          QCheck.Test.fail_reportf
            "mailbox not bounded by open speculation: resident %d > %d" resident
            bound
      in
      quiesce ();
      List.iter
        (fun op ->
          (if op < 25 then begin
             incr next_v;
             Scheduler.send_user sched ~src:(Proc_id.of_int 999) ~dst:r_pid
               ~tags:Aid.Set.empty (Value.Int !next_v);
             Storage_oracle.inject m ~tag:None !next_v
           end
           else if op < 45 then begin
             incr next_v;
             incr tag_seq;
             let tag = Aid.of_proc (Proc_id.of_int (2000 + !tag_seq)) in
             Scheduler.send_user sched ~src:(Proc_id.of_int 999) ~dst:r_pid
               ~tags:(Aid.Set.singleton tag) (Value.Int !next_v);
             Storage_oracle.inject m ~tag:(Some tag) !next_v
           end
           else if op < 65 then begin
             incr next_v;
             Scheduler.send_user sched ~src:(Proc_id.of_int 999) ~dst:s_pid
               ~tags:Aid.Set.empty (Value.Int !next_v);
             Storage_oracle.send_via_s m !next_v
           end
           else if op < 82 then begin
             let len = List.length !r_stack in
             if len > 0 then begin
               let pos = op mod len in
               let target = List.nth !r_stack pos in
               let rolled, rest = cut_at target !r_stack in
               let denied = op mod 2 = 0 in
               let cause =
                 if denied then
                   match List.nth m.Storage_oracle.stack pos with
                   | _, Some a ->
                     Scheduler.Assumption_denied
                       (Option.get a.Storage_oracle.tag)
                   | _, None -> Scheduler.Assumption_revoked
                 else Scheduler.Assumption_revoked
               in
               let denied =
                 match cause with
                 | Scheduler.Assumption_denied _ -> true
                 | _ -> false
               in
               r_stack := rest;
               Scheduler.rollback sched r_pid ~target ~rolled ~cause;
               Storage_oracle.r_rollback m pos ~denied
             end
           end
           else if op < 92 then (
             match !s_stack with
             | [ iid ] ->
               Scheduler.rollback sched s_pid ~target:iid ~rolled:[ iid ]
                 ~cause:Scheduler.Assumption_revoked;
               Storage_oracle.s_rollback m
             | _ -> ())
           else
             match List.rev !r_stack with
             | [] -> ()
             | oldest :: _ ->
               Scheduler.release_interval sched r_pid oldest;
               r_stack := Storage_oracle.take (List.length !r_stack - 1) !r_stack;
               Storage_oracle.finalize_oldest m);
          quiesce ();
          compare_worlds ())
        ops;
      (* Teardown: finalize everything still open, oldest first. All
         storage must drain — checkpoints, journal entries, and the
         receiver's claims all go definite. *)
      (match !s_stack with
      | [ iid ] ->
        Scheduler.release_interval sched s_pid iid;
        s_stack := []
      | _ -> ());
      List.iter
        (fun iid ->
          Scheduler.release_interval sched r_pid iid;
          Storage_oracle.finalize_oldest m)
        (List.rev !r_stack);
      r_stack := [];
      quiesce ();
      if
        not
          (Scheduler.open_checkpoints sched r_pid = 0
          && Scheduler.journal_entries sched r_pid = 0
          && Scheduler.open_checkpoints sched s_pid = 0
          && Scheduler.journal_entries sched s_pid = 0)
      then QCheck.Test.fail_report "storage failed to drain at teardown";
      let resident = Scheduler.arrivals_resident sched r_pid in
      if resident > max 64 ((2 * Storage_oracle.live m) + 1) then
        QCheck.Test.fail_reportf "drained mailbox still unbounded: resident %d"
          resident;
      true)

let qcheck_determinism =
  QCheck.Test.make ~name:"scheduler: same seed, same completion times" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run () =
        let engine = Engine.create ~seed () in
        let sched = Scheduler.create ~engine ~default_latency:Hope_net.Latency.lan () in
        let pids =
          List.init 5 (fun i ->
              Scheduler.spawn sched ~name:(Printf.sprintf "w%d" i)
                (let* d = Program.random_float 0.1 in
                 Program.compute d))
        in
        ignore (Engine.run engine);
        List.map (Scheduler.completion_time sched) pids
      in
      run () = run ())

let () =
  Alcotest.run "proc"
    [
      ( "basics",
        [
          test "terminates" test_terminates;
          test "compute advances time" test_compute_advances_time;
          test "ping pong" test_ping_pong;
          test "combinators" test_combinators;
        ] );
      ( "receive",
        [
          test "filters" test_recv_filters;
          test "recv_from is selective" test_recv_from;
          test "recv_opt is non-blocking" test_recv_opt;
          test "recv_opt with filter" test_recv_opt_with_filter;
        ] );
      ( "observability",
        [
          test "mark writes the trace" test_mark_writes_trace;
          test "wire trace records transmissions" test_wire_trace_records_transmissions;
        ] );
      ( "lifecycle",
        [
          test "spawn hierarchy" test_spawn_hierarchy;
          test "random ops deterministic" test_random_ops_deterministic;
          test "fuel exhaustion detected" test_fuel_exhaustion;
          test "costs accounted" test_costs_accounted;
          test "send_user injection" test_send_user_injection;
          test "hope ops require runtime" test_hope_ops_require_runtime;
          QCheck_alcotest.to_alcotest qcheck_determinism;
        ] );
      ( "storage",
        [ QCheck_alcotest.to_alcotest qcheck_storage_oracle ] );
    ]
