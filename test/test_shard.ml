(* Tests for the sharded multicore engine: the SPSC mailbox ring, the
   shard context, multi-engine telemetry installs, the sharded Time Warp
   executor's determinism contract (same commit set and byte-identical
   merged trace at any domain count), and the scheduler's cross-shard
   transport hooks. *)

module Mailbox = Hope_shard.Mailbox
module Shard = Hope_shard.Shard
module Context = Hope_sim.Context
module Rng = Hope_sim.Rng
module Engine = Hope_sim.Engine
module Metrics = Hope_sim.Metrics
module Telemetry = Hope_sim.Telemetry
module Recorder = Hope_obs.Recorder
module Obs = Hope_obs.Obs
module Phold = Hope_workloads.Phold
module Scheduler = Hope_proc.Scheduler
module Envelope = Hope_types.Envelope
module Proc_id = Hope_types.Proc_id

let test name f = Alcotest.test_case name `Quick f

(* ----------------------------- Mailbox ---------------------------- *)

let test_mailbox_fifo_wraparound () =
  let m = Mailbox.create ~capacity:4 ~dummy:(-1) () in
  Alcotest.(check int) "power-of-two capacity" 4 (Mailbox.capacity m);
  Alcotest.(check bool) "starts empty" true (Mailbox.is_empty m);
  (* many push/pop cycles so the cursors lap the ring repeatedly *)
  let next = ref 0 in
  for round = 1 to 50 do
    let burst = 1 + (round mod 4) in
    for _ = 1 to burst do
      Alcotest.(check bool) "push accepted" true (Mailbox.try_push m !next);
      incr next
    done;
    Alcotest.(check int) "length" burst (Mailbox.length m);
    let expect_base = !next - burst in
    for k = 0 to burst - 1 do
      match Mailbox.pop m with
      | Some v -> Alcotest.(check int) "FIFO across wraps" (expect_base + k) v
      | None -> Alcotest.fail "unexpected empty"
    done
  done;
  Alcotest.(check (option int)) "drained" None (Mailbox.pop m);
  (* full ring refuses; pop frees exactly one slot *)
  for i = 0 to 3 do
    Alcotest.(check bool) "fill" true (Mailbox.try_push m i)
  done;
  Alcotest.(check bool) "full refuses" false (Mailbox.try_push m 99);
  Alcotest.(check (option int)) "head out" (Some 0) (Mailbox.pop m);
  Alcotest.(check bool) "slot freed" true (Mailbox.try_push m 4);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Mailbox.create: capacity must be positive") (fun () ->
      ignore (Mailbox.create ~capacity:0 ~dummy:0 ()))

let test_mailbox_cross_domain () =
  (* A real producer domain against the calling consumer domain, with a
     ring far smaller than the stream so back-pressure engages. *)
  let n = 20_000 in
  let m = Mailbox.create ~capacity:64 ~dummy:(-1) () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Mailbox.push m i ~while_waiting:Domain.cpu_relax
        done)
  in
  let received = ref 0 and in_order = ref true in
  while !received < n do
    match Mailbox.pop m with
    | Some v ->
      if v <> !received then in_order := false;
      incr received
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "sequence preserved across domains" true !in_order;
  Alcotest.(check bool) "empty after drain" true (Mailbox.is_empty m)

(* ----------------------------- Context ---------------------------- *)

let test_context_owner_and_streams () =
  Alcotest.(check int) "owner" 2 (Context.owner ~shards:4 6);
  Alcotest.(check int) "single shard owns all" 0 (Context.owner ~shards:1 6);
  (* per-shard RNG streams: deterministic in (seed, shard_id), pairwise
     distinct across shards *)
  let stream shard_id =
    let ctx = Context.make ~seed:7 ~shards:4 ~shard_id () in
    List.init 8 (fun _ -> Rng.bits64 (Context.rng ctx))
  in
  let streams = List.init 4 stream in
  List.iteri
    (fun i si ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d stream reproducible" i)
        true
        (si = stream i);
      List.iteri
        (fun j sj ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "shards %d/%d streams differ" i j)
              true (si <> sj))
        streams)
    streams;
  Alcotest.check_raises "bad shard_id"
    (Invalid_argument "Context.make: shard_id out of range") (fun () ->
      ignore (Context.make ~shards:2 ~shard_id:2 ()))

(* ------------------------- Telemetry merge ------------------------ *)

let test_telemetry_multi_engine_install () =
  let tele = Telemetry.create ~recorder:(Recorder.create ()) () in
  let e1 = Engine.create ~seed:1 () and e2 = Engine.create ~seed:2 () in
  Metrics.add (Metrics.counter (Engine.metrics e1) "shard.events") 3;
  Metrics.add (Metrics.counter (Engine.metrics e2) "shard.events") 4;
  (* idempotent: re-installing an engine must not double-count it *)
  Telemetry.install tele e1;
  Telemetry.install tele e1;
  Telemetry.install tele e2;
  Telemetry.install tele e2;
  let fams =
    List.filter_map
      (function
        | Hope_obs.Export_openmetrics.Counter { name; labels = []; value }
          when name = "shard.events" ->
          Some value
        | _ -> None)
      (Telemetry.instruments tele)
  in
  Alcotest.(check (list int)) "one merged family, summed" [ 7 ] fams;
  (* the rendered exposition also carries the family exactly once *)
  let om = Telemetry.openmetrics tele in
  let occurrences sub =
    let n = String.length om and m = String.length sub in
    let rec go i acc =
      if i + m > n then acc
      else if String.sub om i m = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one TYPE line" 1
    (occurrences "# TYPE shard_events_total counter");
  Alcotest.(check int) "one sample line" 1 (occurrences "shard_events_total 7")

(* ------------------------ Sharded executor ------------------------ *)

let small_params =
  { Phold.default_params with n_lps = 5; jobs = 12; horizon = 6.0 }

let test_shard_matches_sequential () =
  let seq = Phold.run_sequential small_params in
  List.iter
    (fun domains ->
      let o, r = Phold.run_parallel ~domains small_params in
      Alcotest.(check (array int))
        (Printf.sprintf "checksums at %d domains" domains)
        seq.Phold.checksums o.Phold.checksums;
      Alcotest.(check int)
        (Printf.sprintf "committed events at %d domains" domains)
        seq.Phold.handled_total o.Phold.handled_total;
      Alcotest.(check int)
        "commit records = committed events" o.Phold.handled_total
        r.Shard.committed;
      Alcotest.(check int) "domains recorded" domains r.Shard.domains)
    [ 1; 2; 4 ]

let test_shard_digest_stable_across_domains () =
  let digest domains =
    let _, r = Phold.run_parallel ~domains small_params in
    Shard.commits_digest r
  in
  let d1 = digest 1 in
  Alcotest.(check int) "2 domains" d1 (digest 2);
  Alcotest.(check int) "4 domains" d1 (digest 4);
  Alcotest.(check int) "3 domains" d1 (digest 3)

let merged_trace domains =
  let obs = Recorder.create () in
  Recorder.enable obs;
  let _, r = Phold.run_parallel ~domains small_params in
  Shard.merge_into obs r;
  Obs.export_string Obs.Chrome (Recorder.events obs)

let test_merged_trace_byte_identical () =
  let t1 = merged_trace 1 in
  Alcotest.(check bool) "trace non-trivial" true (String.length t1 > 100);
  Alcotest.(check string) "2 domains" t1 (merged_trace 2);
  Alcotest.(check string) "4 domains" t1 (merged_trace 4)

(* ------------------- cross-shard rollback provenance --------------- *)

let count_substring needle hay =
  let n = String.length hay and m = String.length needle in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub hay i m = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* The provenance artifacts (GraphML commit DAG, Chrome flow events)
   derive only from the merged commit stream, so they inherit its
   determinism contract: byte-identical at any domain count. *)
let provenance_exports domains =
  let obs = Recorder.create () in
  Recorder.enable obs;
  let _, r = Phold.run_parallel ~domains small_params in
  Shard.merge_into obs r;
  let events = Recorder.events obs in
  (Obs.export_string Obs.Graphml events, Obs.export_string Obs.Chrome events)

let test_provenance_byte_identical () =
  let g1, c1 = provenance_exports 1 in
  Alcotest.(check bool) "commit nodes present" true
    (count_substring "<node id=\"c:0\">" g1 > 0);
  Alcotest.(check bool) "caused-by edges present" true
    (count_substring ">caused-by<" g1 > 0);
  Alcotest.(check bool) "flow starts present" true
    (count_substring "\"ph\":\"s\"" c1 > 0);
  Alcotest.(check bool) "flow finishes present" true
    (count_substring "\"bp\":\"e\"" c1 > 0);
  let g2, c2 = provenance_exports 2 in
  let g4, c4 = provenance_exports 4 in
  Alcotest.(check string) "graphml at 2 domains" g1 g2;
  Alcotest.(check string) "graphml at 4 domains" g1 g4;
  Alcotest.(check string) "chrome at 2 domains" c1 c2;
  Alcotest.(check string) "chrome at 4 domains" c1 c4

(* ------------------- labeled shard telemetry ---------------------- *)

let shard_openmetrics ~domains =
  let obs = Recorder.create () in
  let tele = Telemetry.create ~recorder:obs () in
  let _, r = Phold.run_parallel ~domains small_params in
  Shard.merge_into obs r;
  Telemetry.absorb_shards tele ~engines:r.Shard.engines ~samples:r.Shard.samples;
  (Telemetry.openmetrics tele, r)

let test_labeled_export_per_shard () =
  let om, r = shard_openmetrics ~domains:4 in
  Alcotest.(check bool) "telemetry knows it absorbed shards" true
    (Telemetry.has_shards (Telemetry.create ~recorder:(Recorder.create ()) ())
     = false);
  (* every shard contributes a labeled entry under one family header *)
  Alcotest.(check int) "one events family" 1
    (count_substring "# TYPE shard_events_total counter" om);
  for shard = 0 to 3 do
    if
      count_substring
        (Printf.sprintf "shard_events_total{shard=\"%d\"}" shard)
        om
      = 0
    then Alcotest.failf "no labeled entry for shard %d" shard
  done;
  (* the unlabeled aggregate coexists with the labels and equals the
     executor's own total *)
  Alcotest.(check int) "aggregate events" 1
    (count_substring
       (Printf.sprintf "shard_events_total %d" r.Shard.processed)
       om);
  (* GVT trajectory series landed *)
  Alcotest.(check bool) "gvt series" true (count_substring "hope_gvt " om > 0);
  Alcotest.(check bool) "per-shard lvt series" true
    (count_substring "hope_shard_lvt{shard=\"0\"}" om > 0)

let test_labeled_export_deterministic () =
  (* domains = 1 runs the whole executor on the calling domain, so even
     the per-run side is reproducible — byte-identical export. *)
  let om1, _ = shard_openmetrics ~domains:1 in
  let om2, _ = shard_openmetrics ~domains:1 in
  Alcotest.(check string) "byte-identical at 1 domain" om1 om2

(* ------------------- wasted-event attribution --------------------- *)

let qcheck_attribution_sums =
  QCheck.Test.make
    ~name:
      "shard: wasted-event attribution sums to the executor's rolled-back \
       total at any domain count"
    ~count:12
    QCheck.(
      quad (int_range 1 6) (int_range 1 10) (int_range 0 100) small_int)
    (fun (n_lps, jobs, remote_pct, seed) ->
      let p =
        {
          Phold.default_params with
          n_lps;
          jobs;
          remote_prob = float_of_int remote_pct /. 100.;
          horizon = 4.0;
        }
      in
      List.for_all
        (fun domains ->
          let _, r = Phold.run_parallel ~domains ~seed p in
          let attributed =
            List.fold_left (fun acc (_, n) -> acc + n) 0 r.Shard.wasted_by_root
          in
          (* every undone execution is attributed to exactly one root *)
          attributed = r.Shard.rolled_back
          && List.for_all (fun (_, n) -> n > 0) r.Shard.wasted_by_root
          (* roots identify real shards (or -1 for local/seed causes) *)
          && List.for_all
               (fun ((pr : Shard.provenance), _) ->
                 pr.Shard.p_shard >= -1 && pr.Shard.p_shard < domains)
               r.Shard.wasted_by_root)
        [ 1; 2; 4 ])

let qcheck_shard_deterministic =
  QCheck.Test.make
    ~name:
      "shard: random phold commits the sequential event set with an \
       identical merge at 2 and 4 domains"
    ~count:12
    QCheck.(
      quad (int_range 1 6) (int_range 1 10) (int_range 0 100) small_int)
    (fun (n_lps, jobs, remote_pct, seed) ->
      let p =
        {
          Phold.default_params with
          n_lps;
          jobs;
          remote_prob = float_of_int remote_pct /. 100.;
          horizon = 4.0;
        }
      in
      let seq = Phold.run_sequential p in
      let runs =
        List.map
          (fun domains ->
            let obs = Recorder.create () in
            Recorder.enable obs;
            let o, r = Phold.run_parallel ~domains ~seed p in
            Shard.merge_into obs r;
            (o, r, Obs.export_string Obs.Chrome (Recorder.events obs)))
          [ 1; 2; 4 ]
      in
      match runs with
      | [ (o1, r1, t1); (o2, r2, t2); (o4, r4, t4) ] ->
        o1.Phold.checksums = seq.Phold.checksums
        && o2.Phold.checksums = seq.Phold.checksums
        && o4.Phold.checksums = seq.Phold.checksums
        && o1.Phold.handled_total = seq.Phold.handled_total
        && Shard.commits_digest r1 = Shard.commits_digest r2
        && Shard.commits_digest r1 = Shard.commits_digest r4
        && t1 = t2 && t1 = t4
      | _ -> false)

(* --------------------- Scheduler shard transport ------------------- *)

let test_scheduler_id_striping_validation () =
  let engine = Engine.create ~seed:1 () in
  Alcotest.check_raises "zero stride"
    (Invalid_argument "Scheduler.create: msg_id_stride must be positive")
    (fun () -> ignore (Scheduler.create ~engine ~msg_id_stride:0 ()));
  Alcotest.check_raises "base out of range"
    (Invalid_argument "Scheduler.create: msg_id_base must be in [0, stride)")
    (fun () ->
      ignore (Scheduler.create ~engine ~msg_id_base:2 ~msg_id_stride:2 ()))

(* The egress/ingress hooks end to end on the real HOPE runtime: divert
   every user/cancel envelope bound for an odd pid through a simulated
   shard transport (re-injected via [deliver_remote] after a flat extra
   latency), which makes those deliveries stragglers. The run must
   still quiesce with the sequential checksums — the late deliveries
   deny the optimistic no-straggler guesses and the journal machinery
   rolls the affected LPs back — and the diverted ids must stripe like
   a shard's ([fresh_msg_id] base/stride contract). *)
let test_remote_route_integration () =
  let p =
    { Phold.default_params with n_lps = 4; jobs = 8; horizon = 4.0 }
  in
  let diverted = ref 0 in
  let on_setup rt =
    let sched = Hope_core.Runtime.scheduler rt in
    Scheduler.set_remote_route sched (fun ~src:_ ~dst env ->
        let remote =
          Proc_id.to_int dst mod 2 = 1
          &&
          match env.Envelope.payload with
          | Envelope.User _ | Envelope.Cancel _ -> true
          | Envelope.Control _ -> false
        in
        if remote then begin
          incr diverted;
          Scheduler.deliver_remote sched ~delay:0.05 env
        end;
        remote)
  in
  let seq = Phold.run_sequential p in
  let o = Phold.run_hope ~on_setup p in
  Alcotest.(check bool) "some envelopes took the shard path" true (!diverted > 0);
  Alcotest.(check bool) "late deliveries caused rollbacks" true
    (o.Phold.rollbacks > 0);
  Alcotest.(check (array int)) "checksums survive the diversion"
    seq.Phold.checksums o.Phold.checksums;
  Alcotest.(check int) "event set intact" seq.Phold.handled_total
    o.Phold.handled_total

let () =
  Alcotest.run "shard"
    [
      ( "mailbox",
        [
          test "FIFO across wraparound, full/empty edges"
            test_mailbox_fifo_wraparound;
          test "cross-domain SPSC under back-pressure" test_mailbox_cross_domain;
        ] );
      ( "context",
        [ test "owner map and per-shard rng streams" test_context_owner_and_streams ] );
      ( "telemetry",
        [ test "multi-engine install merges, idempotently" test_telemetry_multi_engine_install ] );
      ( "executor",
        [
          test "matches the sequential reference at 1/2/4 domains"
            test_shard_matches_sequential;
          test "commit digest is domain-count independent"
            test_shard_digest_stable_across_domains;
          test "merged chrome trace is byte-identical"
            test_merged_trace_byte_identical;
          QCheck_alcotest.to_alcotest qcheck_shard_deterministic;
        ] );
      ( "observability",
        [
          test "provenance exports are byte-identical across domains"
            test_provenance_byte_identical;
          test "labeled per-shard openmetrics families"
            test_labeled_export_per_shard;
          test "labeled export deterministic at 1 domain"
            test_labeled_export_deterministic;
          QCheck_alcotest.to_alcotest qcheck_attribution_sums;
        ] );
      ( "transport",
        [
          test "msg-id striping validation" test_scheduler_id_striping_validation;
          test "remote route + deliver_remote end to end"
            test_remote_route_integration;
        ] );
    ]
