(* Unit and property tests for the simulation kernel: RNG, heap, metrics,
   trace, vec, and the event engine. *)

module Rng = Hope_sim.Rng
module Heap = Hope_sim.Heap
module Metrics = Hope_sim.Metrics
module Trace = Hope_sim.Trace
module Vec = Hope_sim.Vec
module Engine = Hope_sim.Engine

let test name f = Alcotest.test_case name `Quick f

(* ----------------------------- Rng -------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child in
  (* Drawing more from the parent must not perturb the child. *)
  let parent2 = Rng.create ~seed:7 in
  let child2 = Rng.split parent2 in
  ignore (Rng.bits64 parent2);
  ignore (Rng.bits64 parent2);
  Alcotest.(check int64) "child stream unaffected by parent draws" c1 (Rng.bits64 child2)

let test_rng_copy () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of range: %d" v
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of range: %f" v
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create ~seed:8 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 is false" false (Rng.bernoulli r ~p:0.0);
    Alcotest.(check bool) "p=1 is true" true (Rng.bernoulli r ~p:1.0)
  done

let test_rng_mean_sanity () =
  let r = Rng.create ~seed:10 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 3.0) > 0.15 then Alcotest.failf "exponential mean off: %f" mean

let test_rng_normal_moments () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 and sum_sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal r ~mu:5.0 ~sigma:2.0 in
    sum := !sum +. x;
    sum_sq := !sum_sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum_sq /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 5.0) > 0.1 then Alcotest.failf "normal mean off: %f" mean;
  if Float.abs (var -. 4.0) > 0.3 then Alcotest.failf "normal var off: %f" var

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:12 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let qcheck_rng_int_in_range =
  QCheck.Test.make ~name:"rng: int always in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let qcheck_rng_uniform_in_range =
  QCheck.Test.make ~name:"rng: uniform in [lo, hi)" ~count:500
    QCheck.(triple small_int (float_bound_exclusive 100.0) (float_bound_exclusive 100.0))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b +. 1.0 in
      let r = Rng.create ~seed in
      let v = Rng.uniform r ~lo ~hi in
      v >= lo && v < hi)

(* ----------------------------- Heap ------------------------------- *)

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:1.0 v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> assert false in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order among ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_peek_and_clear () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~priority:2.0 "x";
  Heap.push h ~priority:1.0 "y";
  (match Heap.peek h with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
    Alcotest.(check string) "peek value" "y" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Heap.length h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap: pop order equals stable sort" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p (p, i)) priorities;
      let rec drain acc =
        match Heap.pop h with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.mapi (fun i p -> (p, i)) priorities
        |> List.stable_sort (fun (p1, i1) (p2, i2) ->
               match compare p1 p2 with 0 -> compare i1 i2 | c -> c)
      in
      popped = expected)

(* ----------------------------- Metrics ---------------------------- *)

let test_metrics_counters () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "a" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "count" 5 (Metrics.count c);
  Alcotest.(check int) "same instrument" 5 (Metrics.count (Metrics.counter reg "a"));
  Alcotest.(check int) "find_counter" 5 (Metrics.find_counter reg "a");
  Alcotest.(check int) "missing counter is 0" 0 (Metrics.find_counter reg "zzz")

let test_metrics_histogram () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Metrics.hist_min h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Metrics.hist_mean h);
  let p50 = Metrics.hist_percentile h 50.0 in
  if p50 < 45.0 || p50 > 56.0 then Alcotest.failf "p50 off: %f" p50;
  let sd = Metrics.hist_stddev h in
  if Float.abs (sd -. 29.0) > 1.0 then Alcotest.failf "stddev off: %f" sd

let test_metrics_empty_histogram () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "empty" in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Metrics.hist_mean h));
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (Metrics.hist_percentile h 50.0))

let test_metrics_reservoir_bounded () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "big" in
  for i = 1 to 100_000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "exact count despite sampling" 100_000 (Metrics.hist_count h);
  let p50 = Metrics.hist_percentile h 50.0 in
  if p50 < 40_000.0 || p50 > 60_000.0 then Alcotest.failf "sampled p50 off: %f" p50

let test_metrics_percentile_accuracy () =
  let reg = Metrics.create_registry () in
  (* Below the reservoir capacity every sample is retained, so the
     percentiles are the exact linear-interpolation order statistics. *)
  let h = Metrics.histogram reg "exact" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "exact p0" 1.0 (Metrics.hist_percentile h 0.0);
  Alcotest.(check (float 1e-9)) "exact p50" 500.5 (Metrics.hist_percentile h 50.0);
  Alcotest.(check (float 1e-9)) "exact p90" 900.1 (Metrics.hist_percentile h 90.0);
  Alcotest.(check (float 1e-9)) "exact p99" 990.01 (Metrics.hist_percentile h 99.0);
  Alcotest.(check (float 1e-9)) "exact p100" 1000.0 (Metrics.hist_percentile h 100.0);
  (* Past the capacity the estimate comes from a seeded reservoir sample;
     it must stay within a few percent of the true quantile (the RNG is
     deterministic, so this is a fixed value, not a flaky bound). *)
  let big = Metrics.histogram reg "sampled" in
  for i = 1 to 100_000 do
    Metrics.observe big (float_of_int i)
  done;
  List.iter
    (fun (p, expected) ->
      let v = Metrics.hist_percentile big p in
      let tolerance = 0.03 *. 100_000.0 in
      if Float.abs (v -. expected) > tolerance then
        Alcotest.failf "sampled p%.0f off: %f (expected %f +- %f)" p v expected
          tolerance)
    [ (10.0, 10_000.0); (50.0, 50_000.0); (90.0, 90_000.0); (99.0, 99_000.0) ]

(* ----------------------------- Trace ------------------------------ *)

let test_trace_disabled_by_default () =
  let t = Trace.create () in
  Trace.record t ~time:0.0 ~category:"x" "hello";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.entries t))

let test_trace_roundtrip () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.record t ~time:1.0 ~category:"a" "one";
  Trace.record t ~time:2.0 ~category:"b" "two";
  Trace.recordf t ~time:3.0 ~category:"a" "three-%d" 3;
  let entries = Trace.entries t in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  Alcotest.(check (list string)) "category filter" [ "one"; "three-3" ]
    (List.map (fun e -> e.Trace.message) (Trace.find t ~category:"a"))

let test_trace_ring_wraps () =
  let t = Trace.create ~capacity:4 () in
  Trace.enable t;
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~category:"n" (string_of_int i)
  done;
  Alcotest.(check (list string)) "keeps the newest 4" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.message) (Trace.entries t))

(* ----------------------------- Vec -------------------------------- *)

let test_vec_basics () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check (option int)) "find from" (Some 50)
    (Vec.find_index_from v 10 (fun x -> x = 50));
  Alcotest.(check (option int)) "find missing" None
    (Vec.find_index_from v 60 (fun x -> x = 50));
  Alcotest.(check int) "fold" 4950 (Vec.fold_left ( + ) 0 v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

(* ----------------------------- Engine ----------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun _ -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun _ -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:3.0 (fun _ -> log := "c" :: !log));
  Alcotest.(check bool) "quiescent" true (Engine.run e = Engine.Quiescent);
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Engine.schedule e ~delay:1.0 (fun _ -> log := tag :: !log)))
    [ "1"; "2"; "3" ];
  ignore (Engine.run e);
  Alcotest.(check (list string)) "FIFO among equal times" [ "1"; "2"; "3" ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun _ -> fired := true) in
  Engine.cancel h;
  ignore (Engine.run e);
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_engine_time_limit () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:10.0 (fun _ -> ()));
  (match Engine.run ~until:5.0 e with
  | Engine.Time_limit -> ()
  | r -> Alcotest.failf "expected time limit, got %a" Engine.pp_stop_reason r);
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 5.0 (Engine.now e);
  Alcotest.(check bool) "event still pending" true (Engine.pending_events e = 1);
  Alcotest.(check bool) "second run finishes" true (Engine.run e = Engine.Quiescent)

let test_engine_event_limit_and_stop () =
  let e = Engine.create () in
  let rec reschedule t = ignore (Engine.schedule t ~delay:1.0 reschedule) in
  reschedule e;
  (match Engine.run ~max_events:10 e with
  | Engine.Event_limit -> ()
  | r -> Alcotest.failf "expected event limit, got %a" Engine.pp_stop_reason r);
  let e2 = Engine.create () in
  ignore (Engine.schedule e2 ~delay:1.0 (fun t -> Engine.stop t));
  ignore (Engine.schedule e2 ~delay:2.0 (fun _ -> ()));
  match Engine.run e2 with
  | Engine.Stopped -> ()
  | r -> Alcotest.failf "expected stopped, got %a" Engine.pp_stop_reason r

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun _ -> ()));
  ignore (Engine.run e);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule e ~delay:(-1.0) (fun _ -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "past absolute time raises" true
    (try
       ignore (Engine.schedule_at e ~at:0.5 (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          test "deterministic from seed" test_rng_deterministic;
          test "seed sensitivity" test_rng_seed_sensitivity;
          test "split independence" test_rng_split_independent;
          test "copy" test_rng_copy;
          test "int bounds" test_rng_int_bounds;
          test "float bounds" test_rng_float_bounds;
          test "bernoulli extremes" test_rng_bernoulli_extremes;
          test "exponential mean" test_rng_mean_sanity;
          test "normal moments" test_rng_normal_moments;
          test "shuffle permutes" test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest qcheck_rng_int_in_range;
          QCheck_alcotest.to_alcotest qcheck_rng_uniform_in_range;
        ] );
      ( "heap",
        [
          test "orders by priority" test_heap_orders;
          test "FIFO among ties" test_heap_fifo_ties;
          test "peek and clear" test_heap_peek_and_clear;
          QCheck_alcotest.to_alcotest qcheck_heap_sorts;
        ] );
      ( "metrics",
        [
          test "counters" test_metrics_counters;
          test "histogram stats" test_metrics_histogram;
          test "empty histogram" test_metrics_empty_histogram;
          test "reservoir bounded" test_metrics_reservoir_bounded;
          test "percentile accuracy" test_metrics_percentile_accuracy;
        ] );
      ( "trace",
        [
          test "disabled by default" test_trace_disabled_by_default;
          test "roundtrip and filter" test_trace_roundtrip;
          test "ring wraps" test_trace_ring_wraps;
        ] );
      ("vec", [ test "basics" test_vec_basics ]);
      ( "engine",
        [
          test "timestamp ordering" test_engine_ordering;
          test "FIFO at equal times" test_engine_fifo_same_time;
          test "cancellation" test_engine_cancel;
          test "time limit" test_engine_time_limit;
          test "event limit and stop" test_engine_event_limit_and_stop;
          test "rejects scheduling in the past" test_engine_rejects_past;
        ] );
    ]
