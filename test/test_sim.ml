(* Unit and property tests for the simulation kernel: RNG, heap, metrics,
   trace, vec, and the event engine. *)

module Rng = Hope_sim.Rng
module Heap = Hope_sim.Heap
module Equeue = Hope_sim.Equeue
module Metrics = Hope_sim.Metrics
module Trace = Hope_sim.Trace
module Vec = Hope_sim.Vec
module Engine = Hope_sim.Engine

let test name f = Alcotest.test_case name `Quick f

(* ----------------------------- Rng -------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child in
  (* Drawing more from the parent must not perturb the child. *)
  let parent2 = Rng.create ~seed:7 in
  let child2 = Rng.split parent2 in
  ignore (Rng.bits64 parent2);
  ignore (Rng.bits64 parent2);
  Alcotest.(check int64) "child stream unaffected by parent draws" c1 (Rng.bits64 child2)

let test_rng_copy () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of range: %d" v
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create ~seed:6 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of range: %f" v
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create ~seed:8 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 is false" false (Rng.bernoulli r ~p:0.0);
    Alcotest.(check bool) "p=1 is true" true (Rng.bernoulli r ~p:1.0)
  done

let test_rng_mean_sanity () =
  let r = Rng.create ~seed:10 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 3.0) > 0.15 then Alcotest.failf "exponential mean off: %f" mean

let test_rng_normal_moments () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 and sum_sq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal r ~mu:5.0 ~sigma:2.0 in
    sum := !sum +. x;
    sum_sq := !sum_sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum_sq /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 5.0) > 0.1 then Alcotest.failf "normal mean off: %f" mean;
  if Float.abs (var -. 4.0) > 0.3 then Alcotest.failf "normal var off: %f" var

let test_rng_shuffle_permutes () =
  let r = Rng.create ~seed:12 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let qcheck_rng_int_in_range =
  QCheck.Test.make ~name:"rng: int always in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let qcheck_rng_uniform_in_range =
  QCheck.Test.make ~name:"rng: uniform in [lo, hi)" ~count:500
    QCheck.(triple small_int (float_bound_exclusive 100.0) (float_bound_exclusive 100.0))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b +. 1.0 in
      let r = Rng.create ~seed in
      let v = Rng.uniform r ~lo ~hi in
      v >= lo && v < hi)

(* ----------------------------- Heap ------------------------------- *)

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:1.0 v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> assert false in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order among ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_peek_and_clear () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~priority:2.0 "x";
  Heap.push h ~priority:1.0 "y";
  (match Heap.peek h with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
    Alcotest.(check string) "peek value" "y" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Heap.length h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap: pop order equals stable sort" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p (p, i)) priorities;
      let rec drain acc =
        match Heap.pop h with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.mapi (fun i p -> (p, i)) priorities
        |> List.stable_sort (fun (p1, i1) (p2, i2) ->
               match compare p1 p2 with 0 -> compare i1 i2 | c -> c)
      in
      popped = expected)

(* ----------------------------- Equeue ----------------------------- *)

let test_equeue_orders () =
  let q = Equeue.create ~dummy:(-1) () in
  List.iteri (fun i p -> Equeue.push q ~priority:p i) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let rec drain acc =
    if Equeue.is_empty q then List.rev acc
    else begin
      let p = Equeue.min_prio q in
      let v = Equeue.pop_min_exn q in
      drain ((p, v) :: acc)
    end
  in
  Alcotest.(check (list (pair (float 0.0) int)))
    "priority order with payloads"
    [ (1.0, 1); (2.0, 3); (3.0, 2); (4.0, 4); (5.0, 0) ]
    (drain [])

let test_equeue_fifo_ties () =
  let q = Equeue.create ~dummy:"" () in
  List.iter (fun v -> Equeue.push q ~priority:1.0 v) [ "a"; "b"; "c" ];
  Equeue.push q ~priority:0.5 "first";
  Equeue.push q ~priority:1.0 "d";
  let rec drain acc =
    if Equeue.is_empty q then List.rev acc
    else drain (Equeue.pop_min_exn q :: acc)
  in
  Alcotest.(check (list string)) "insertion order among equal priorities"
    [ "first"; "a"; "b"; "c"; "d" ] (drain [])

let test_equeue_peek_pop_clear () =
  let q = Equeue.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Equeue.is_empty q);
  Alcotest.check_raises "min_prio on empty"
    (Invalid_argument "Equeue.min_prio: empty") (fun () ->
      ignore (Equeue.min_prio q));
  Equeue.push q ~priority:2.0 20;
  Equeue.push q ~priority:1.0 10;
  (match Equeue.peek q with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
    Alcotest.(check int) "peek value" 10 v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Equeue.length q);
  Alcotest.(check (option (pair (float 0.0) int))) "pop" (Some (1.0, 10))
    (Equeue.pop q);
  Equeue.clear q;
  Alcotest.(check bool) "cleared" true (Equeue.is_empty q);
  (* The sequence counter resets with the queue, so tie-break order starts
     over: a run restarted from clear behaves like a fresh queue. *)
  Equeue.push q ~priority:1.0 1;
  Alcotest.(check int) "seq restarts after clear" 1 (Equeue.next_seq q)

(* The determinism oracle for the tentpole: on any interleaving of pushes,
   pops, and clears, the unboxed 4-ary queue pops the exact (priority,
   payload) sequence the reference binary heap does — same total
   (priority, seq) order, so swapping the engine's queue cannot reorder
   events with identical timestamps. *)
let qcheck_equeue_matches_heap =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun p -> `Push p) (float_bound_exclusive 100.0));
          (3, return `Pop);
          (1, return `Clear);
        ])
  in
  let print_op = function
    | `Push p -> Printf.sprintf "push %f" p
    | `Pop -> "pop"
    | `Clear -> "clear"
  in
  QCheck.Test.make ~name:"equeue: oracle equivalence with Heap" ~count:500
    QCheck.(make ~print:(QCheck.Print.list print_op) Gen.(list_size (int_range 0 200) op_gen))
    (fun ops ->
      let q = Equeue.create ~dummy:(-1) () in
      let h = Heap.create () in
      let id = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Push p ->
            incr id;
            Equeue.push q ~priority:p !id;
            Heap.push h ~priority:p !id;
            true
          | `Pop -> Equeue.pop q = Heap.pop h
          | `Clear ->
            Equeue.clear q;
            Heap.clear h;
            true)
        ops
      && begin
           (* drain both completely: the tail orders must agree too *)
           let rec drain () =
             match (Equeue.pop q, Heap.pop h) with
             | None, None -> true
             | a, b -> a = b && drain ()
           in
           drain ()
         end)

(* ------------------------- Engine pool ---------------------------- *)

(* The pooled spine must recycle: a long run schedules millions of events
   but allocates only as many records as are ever simultaneously pending
   (plus the pop-before-run window). *)
let test_engine_pool_reuse () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec reschedule t =
    incr count;
    if !count < 10_000 then ignore (Engine.schedule t ~delay:1.0 reschedule)
  in
  ignore (Engine.schedule e ~delay:1.0 reschedule);
  ignore (Engine.run e);
  Alcotest.(check int) "all events ran" 10_000 !count;
  Alcotest.(check bool)
    (Printf.sprintf "pool stayed small (%d records)" (Engine.pool_allocated e))
    true
    (Engine.pool_allocated e <= 4);
  Alcotest.(check int) "every record back on the free list"
    (Engine.pool_allocated e) (Engine.pool_free e)

let test_engine_pool_cancelled_recycled () =
  let e = Engine.create () in
  let fired = ref 0 in
  for _ = 1 to 1000 do
    let h = Engine.schedule e ~delay:1.0 (fun _ -> incr fired) in
    Engine.cancel h
  done;
  ignore (Engine.run e);
  Alcotest.(check int) "none fired" 0 !fired;
  Alcotest.(check int) "records recycled" (Engine.pool_allocated e)
    (Engine.pool_free e)

(* A recycled record must not resurrect an old cancellation: cancelling a
   stale handle (whose event already ran) is a no-op even after the
   record is reused by a new schedule. *)
let test_engine_stale_cancel_harmless () =
  let e = Engine.create () in
  let h1 = Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  ignore (Engine.run e);
  let fired = ref false in
  let _h2 = Engine.schedule e ~delay:1.0 (fun _ -> fired := true) in
  Engine.cancel h1;
  (* stale: its event already ran and the record was recycled *)
  ignore (Engine.run e);
  Alcotest.(check bool) "new event unaffected by stale cancel" true !fired

let qcheck_engine_pool_bounded =
  QCheck.Test.make ~name:"engine: pool bounded by peak pending" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (QCheck.int_range 1 20))
    (fun batches ->
      let e = Engine.create () in
      let peak = List.fold_left max 0 batches in
      List.iter
        (fun n ->
          for _ = 1 to n do
            ignore (Engine.schedule e ~delay:1.0 (fun _ -> ()))
          done;
          ignore (Engine.run e))
        batches;
      (* every batch drains fully, so the pool never exceeds the largest
         batch (the pop-before-release window adds nothing: release
         happens before the handler runs) *)
      Engine.pool_allocated e <= peak
      && Engine.pool_free e = Engine.pool_allocated e)

(* -------------------- Rng reference equivalence -------------------- *)

(* The generator computes SplitMix64 on tagged-int halves (no Int64
   boxing); this pins it bit-for-bit to the textbook Int64 formulation.
   The trace-determinism contract depends on this equivalence. *)
module Rng_ref = struct
  type t = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L

  let mix z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let bits64 t =
    t.state <- Int64.add t.state golden_gamma;
    mix t.state

  let float t bound =
    let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
    bits /. 9007199254740992.0 *. bound

  let int t bound =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    v mod bound
end

let test_rng_matches_int64_reference () =
  List.iter
    (fun seed ->
      let a = { Rng_ref.state = Int64.of_int seed } in
      let b = Rng.create ~seed in
      for i = 0 to 1999 do
        match i mod 4 with
        | 0 ->
          let x = Rng_ref.bits64 a and y = Rng.bits64 b in
          if x <> y then
            Alcotest.failf "bits64 mismatch seed=%d i=%d: %Lx <> %Lx" seed i x y
        | 1 ->
          let x = Rng_ref.float a 3.25 and y = Rng.float b 3.25 in
          if x <> y then
            Alcotest.failf "float mismatch seed=%d i=%d: %h <> %h" seed i x y
        | 2 ->
          let x = Rng_ref.int a 1_000_007 and y = Rng.int b 1_000_007 in
          if x <> y then
            Alcotest.failf "int mismatch seed=%d i=%d: %d <> %d" seed i x y
        | _ ->
          let x = Int64.logand (Rng_ref.bits64 a) 1L = 1L and y = Rng.bool b in
          if x <> y then Alcotest.failf "bool mismatch seed=%d i=%d" seed i
      done;
      (* split: the child continues the reference stream seeded by the
         parent's next draw *)
      let a2 = { Rng_ref.state = Rng_ref.bits64 a } and b2 = Rng.split b in
      for _ = 0 to 99 do
        Alcotest.(check int64) "split stream" (Rng_ref.bits64 a2) (Rng.bits64 b2)
      done)
    [ 0; 1; 17; 42; -1; -123456789; max_int; min_int; 0x123456789ABCDEF ]

let test_rng_split_n_reference () =
  (* split_n child i continues the reference stream seeded by the
     parent's (i+1)-th draw — i.e. it is exactly [split] repeated, so
     per-shard streams are pinned to the same Int64 reference model as
     the parent generator. *)
  List.iter
    (fun seed ->
      let a = { Rng_ref.state = Int64.of_int seed } in
      let parent = Rng.create ~seed in
      let children = Rng.split_n parent 5 in
      Alcotest.(check int) "arity" 5 (Array.length children);
      Array.iter
        (fun child ->
          let ref_child = { Rng_ref.state = Rng_ref.bits64 a } in
          for _ = 0 to 49 do
            Alcotest.(check int64) "split_n stream" (Rng_ref.bits64 ref_child)
              (Rng.bits64 child)
          done)
        children;
      (* the parent stream resumes after exactly n draws *)
      Alcotest.(check int64) "parent resumes" (Rng_ref.bits64 a)
        (Rng.bits64 parent))
    [ 0; 42; -7; 0x5DEECE66D ];
  Alcotest.(check int) "zero children" 0 (Array.length (Rng.split_n (Rng.create ~seed:1) 0));
  Alcotest.check_raises "negative count" (Invalid_argument "Rng.split_n: negative count")
    (fun () -> ignore (Rng.split_n (Rng.create ~seed:1) (-1)))

(* ----------------------------- Metrics ---------------------------- *)

let test_metrics_counters () =
  let reg = Metrics.create_registry () in
  let c = Metrics.counter reg "a" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "count" 5 (Metrics.count c);
  Alcotest.(check int) "same instrument" 5 (Metrics.count (Metrics.counter reg "a"));
  Alcotest.(check int) "find_counter" 5 (Metrics.find_counter reg "a");
  Alcotest.(check int) "missing counter is 0" 0 (Metrics.find_counter reg "zzz")

let test_metrics_histogram () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Metrics.hist_min h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Metrics.hist_mean h);
  let p50 = Metrics.hist_percentile h 50.0 in
  if p50 < 45.0 || p50 > 56.0 then Alcotest.failf "p50 off: %f" p50;
  let sd = Metrics.hist_stddev h in
  if Float.abs (sd -. 29.0) > 1.0 then Alcotest.failf "stddev off: %f" sd

let test_metrics_empty_histogram () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "empty" in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Metrics.hist_mean h));
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (Metrics.hist_percentile h 50.0))

let test_metrics_reservoir_bounded () =
  let reg = Metrics.create_registry () in
  let h = Metrics.histogram reg "big" in
  for i = 1 to 100_000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "exact count despite sampling" 100_000 (Metrics.hist_count h);
  let p50 = Metrics.hist_percentile h 50.0 in
  if p50 < 40_000.0 || p50 > 60_000.0 then Alcotest.failf "sampled p50 off: %f" p50

let test_metrics_percentile_accuracy () =
  let reg = Metrics.create_registry () in
  (* Below the reservoir capacity every sample is retained, so the
     percentiles are the exact linear-interpolation order statistics. *)
  let h = Metrics.histogram reg "exact" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "exact p0" 1.0 (Metrics.hist_percentile h 0.0);
  Alcotest.(check (float 1e-9)) "exact p50" 500.5 (Metrics.hist_percentile h 50.0);
  Alcotest.(check (float 1e-9)) "exact p90" 900.1 (Metrics.hist_percentile h 90.0);
  Alcotest.(check (float 1e-9)) "exact p99" 990.01 (Metrics.hist_percentile h 99.0);
  Alcotest.(check (float 1e-9)) "exact p100" 1000.0 (Metrics.hist_percentile h 100.0);
  (* Past the capacity the estimate comes from a seeded reservoir sample;
     it must stay within a few percent of the true quantile (the RNG is
     deterministic, so this is a fixed value, not a flaky bound). *)
  let big = Metrics.histogram reg "sampled" in
  for i = 1 to 100_000 do
    Metrics.observe big (float_of_int i)
  done;
  List.iter
    (fun (p, expected) ->
      let v = Metrics.hist_percentile big p in
      let tolerance = 0.03 *. 100_000.0 in
      if Float.abs (v -. expected) > tolerance then
        Alcotest.failf "sampled p%.0f off: %f (expected %f +- %f)" p v expected
          tolerance)
    [ (10.0, 10_000.0); (50.0, 50_000.0); (90.0, 90_000.0); (99.0, 99_000.0) ]

(* ----------------------------- Trace ------------------------------ *)

let test_trace_disabled_by_default () =
  let t = Trace.create () in
  Trace.record t ~time:0.0 ~category:"x" "hello";
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.entries t))

let test_trace_roundtrip () =
  let t = Trace.create () in
  Trace.enable t;
  Trace.record t ~time:1.0 ~category:"a" "one";
  Trace.record t ~time:2.0 ~category:"b" "two";
  Trace.recordf t ~time:3.0 ~category:"a" "three-%d" 3;
  let entries = Trace.entries t in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  Alcotest.(check (list string)) "category filter" [ "one"; "three-3" ]
    (List.map (fun e -> e.Trace.message) (Trace.find t ~category:"a"))

let test_trace_ring_wraps () =
  let t = Trace.create ~capacity:4 () in
  Trace.enable t;
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~category:"n" (string_of_int i)
  done;
  Alcotest.(check (list string)) "keeps the newest 4" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.message) (Trace.entries t))

(* ----------------------------- Vec -------------------------------- *)

let test_vec_basics () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check (option int)) "find from" (Some 50)
    (Vec.find_index_from v 10 (fun x -> x = 50));
  Alcotest.(check (option int)) "find missing" None
    (Vec.find_index_from v 60 (fun x -> x = 50));
  Alcotest.(check int) "fold" 4950 (Vec.fold_left ( + ) 0 v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

(* ----------------------------- Engine ----------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun _ -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun _ -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:3.0 (fun _ -> log := "c" :: !log));
  Alcotest.(check bool) "quiescent" true (Engine.run e = Engine.Quiescent);
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Engine.schedule e ~delay:1.0 (fun _ -> log := tag :: !log)))
    [ "1"; "2"; "3" ];
  ignore (Engine.run e);
  Alcotest.(check (list string)) "FIFO among equal times" [ "1"; "2"; "3" ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun _ -> fired := true) in
  Engine.cancel h;
  ignore (Engine.run e);
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_engine_time_limit () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:10.0 (fun _ -> ()));
  (match Engine.run ~until:5.0 e with
  | Engine.Time_limit -> ()
  | r -> Alcotest.failf "expected time limit, got %a" Engine.pp_stop_reason r);
  Alcotest.(check (float 1e-9)) "clock advanced to horizon" 5.0 (Engine.now e);
  Alcotest.(check bool) "event still pending" true (Engine.pending_events e = 1);
  Alcotest.(check bool) "second run finishes" true (Engine.run e = Engine.Quiescent)

let test_engine_event_limit_and_stop () =
  let e = Engine.create () in
  let rec reschedule t = ignore (Engine.schedule t ~delay:1.0 reschedule) in
  reschedule e;
  (match Engine.run ~max_events:10 e with
  | Engine.Event_limit -> ()
  | r -> Alcotest.failf "expected event limit, got %a" Engine.pp_stop_reason r);
  let e2 = Engine.create () in
  ignore (Engine.schedule e2 ~delay:1.0 (fun t -> Engine.stop t));
  ignore (Engine.schedule e2 ~delay:2.0 (fun _ -> ()));
  match Engine.run e2 with
  | Engine.Stopped -> ()
  | r -> Alcotest.failf "expected stopped, got %a" Engine.pp_stop_reason r

(* The virtual-time sampler hook Telemetry drives: due times advance by
   one stride from [now] at each firing, so a clock jumping several
   strides yields one sample (no catch-up burst), and the schedule is a
   pure function of the event sequence. *)
let test_engine_sampler () =
  let run () =
    let e = Engine.create () in
    let samples = ref [] in
    Engine.set_sampler e ~stride:1.0 (fun t ->
        samples := Engine.now t :: !samples);
    (* Events at 0.1, then a jump past three strides, then small steps. *)
    List.iter
      (fun at -> ignore (Engine.schedule_at e ~at (fun _ -> ())))
      [ 0.1; 3.5; 3.6; 4.2; 10.0 ];
    ignore (Engine.run e);
    List.rev !samples
  in
  let s1 = run () in
  (* First event triggers the first sample; 3.5 covers the missed
     strides with a single firing and pushes the next due time to 4.5,
     so 3.6 and 4.2 are quiet; 10.0 crosses it once. *)
  Alcotest.(check (list (float 0.0)))
    "one sample per due crossing, no bursts" [ 0.1; 3.5; 10.0 ] s1;
  Alcotest.(check (list (float 0.0))) "deterministic" s1 (run ());
  (* Replacing and clearing. *)
  let e = Engine.create () in
  let a = ref 0 and b = ref 0 in
  Engine.set_sampler e ~stride:1.0 (fun _ -> incr a);
  Engine.set_sampler e ~stride:1.0 (fun _ -> incr b);
  ignore (Engine.schedule_at e ~at:1.0 (fun _ -> ()));
  ignore (Engine.run e);
  Alcotest.(check int) "replaced sampler never fires" 0 !a;
  Alcotest.(check int) "replacement fires" 1 !b;
  Engine.clear_sampler e;
  ignore (Engine.schedule_at e ~at:5.0 (fun _ -> ()));
  ignore (Engine.run e);
  Alcotest.(check int) "cleared sampler is silent" 1 !b;
  Alcotest.(check bool) "bad stride rejected" true
    (try
       Engine.set_sampler e ~stride:0.0 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun _ -> ()));
  ignore (Engine.run e);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule e ~delay:(-1.0) (fun _ -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "past absolute time raises" true
    (try
       ignore (Engine.schedule_at e ~at:0.5 (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          test "deterministic from seed" test_rng_deterministic;
          test "seed sensitivity" test_rng_seed_sensitivity;
          test "split independence" test_rng_split_independent;
          test "copy" test_rng_copy;
          test "int bounds" test_rng_int_bounds;
          test "float bounds" test_rng_float_bounds;
          test "bernoulli extremes" test_rng_bernoulli_extremes;
          test "exponential mean" test_rng_mean_sanity;
          test "normal moments" test_rng_normal_moments;
          test "shuffle permutes" test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest qcheck_rng_int_in_range;
          QCheck_alcotest.to_alcotest qcheck_rng_uniform_in_range;
          test "matches Int64 reference bit-for-bit"
            test_rng_matches_int64_reference;
          test "split_n matches repeated split against the reference"
            test_rng_split_n_reference;
        ] );
      ( "heap",
        [
          test "orders by priority" test_heap_orders;
          test "FIFO among ties" test_heap_fifo_ties;
          test "peek and clear" test_heap_peek_and_clear;
          QCheck_alcotest.to_alcotest qcheck_heap_sorts;
        ] );
      ( "equeue",
        [
          test "orders by priority" test_equeue_orders;
          test "FIFO among ties" test_equeue_fifo_ties;
          test "peek, pop, clear" test_equeue_peek_pop_clear;
          QCheck_alcotest.to_alcotest qcheck_equeue_matches_heap;
        ] );
      ( "metrics",
        [
          test "counters" test_metrics_counters;
          test "histogram stats" test_metrics_histogram;
          test "empty histogram" test_metrics_empty_histogram;
          test "reservoir bounded" test_metrics_reservoir_bounded;
          test "percentile accuracy" test_metrics_percentile_accuracy;
        ] );
      ( "trace",
        [
          test "disabled by default" test_trace_disabled_by_default;
          test "roundtrip and filter" test_trace_roundtrip;
          test "ring wraps" test_trace_ring_wraps;
        ] );
      ("vec", [ test "basics" test_vec_basics ]);
      ( "engine",
        [
          test "timestamp ordering" test_engine_ordering;
          test "FIFO at equal times" test_engine_fifo_same_time;
          test "cancellation" test_engine_cancel;
          test "time limit" test_engine_time_limit;
          test "event limit and stop" test_engine_event_limit_and_stop;
          test "rejects scheduling in the past" test_engine_rejects_past;
          test "virtual-time sampler" test_engine_sampler;
          test "pool reuse across a long run" test_engine_pool_reuse;
          test "cancelled events recycled" test_engine_pool_cancelled_recycled;
          test "stale cancel is harmless" test_engine_stale_cancel_harmless;
          QCheck_alcotest.to_alcotest qcheck_engine_pool_bounded;
        ] );
    ]
