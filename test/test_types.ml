(* Unit and property tests for the shared type layer: values, identifiers,
   wire messages, and envelopes. *)

open Hope_types

let test name f = Alcotest.test_case name `Quick f

(* ----------------------------- Value ------------------------------ *)

let rec value_gen depth =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Value.Unit;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_int;
        map (fun f -> Value.Float f) (float_bound_exclusive 1000.0);
        map (fun s -> Value.String s) small_string;
        map (fun i -> Value.Pid (Proc_id.of_int i)) small_nat;
        map (fun i -> Value.Aid_v (Aid.of_proc (Proc_id.of_int i))) small_nat;
      ]
  in
  if depth = 0 then leaf
  else
    oneof
      [
        leaf;
        map2 (fun a b -> Value.Pair (a, b)) (value_gen (depth - 1)) (value_gen (depth - 1));
        map (fun vs -> Value.List vs) (list_size (int_bound 4) (value_gen (depth - 1)));
      ]

let arbitrary_value = QCheck.make ~print:Value.to_string (value_gen 3)

let qcheck_value_equal_reflexive =
  QCheck.Test.make ~name:"value: equality is reflexive" ~count:500 arbitrary_value
    (fun v -> Value.equal v v)

let qcheck_value_size_positive =
  QCheck.Test.make ~name:"value: serialised size is positive" ~count:500
    arbitrary_value (fun v -> Value.size_bytes v > 0)

let qcheck_value_triple_roundtrip =
  QCheck.Test.make ~name:"value: triple roundtrip" ~count:200
    QCheck.(triple arbitrary_value arbitrary_value arbitrary_value)
    (fun (a, b, c) ->
      let a', b', c' = Value.to_triple (Value.triple a b c) in
      Value.equal a a' && Value.equal b b' && Value.equal c c')

let test_value_inequality () =
  Alcotest.(check bool) "Int <> Bool" false (Value.equal (Value.Int 1) (Value.Bool true));
  Alcotest.(check bool) "list length matters" false
    (Value.equal (Value.List [ Value.Int 1 ]) (Value.List [ Value.Int 1; Value.Int 2 ]));
  Alcotest.(check bool) "nested comparison" true
    (Value.equal
       (Value.Pair (Value.Int 1, Value.String "x"))
       (Value.Pair (Value.Int 1, Value.String "x")))

let test_value_projections_raise () =
  let check_raises name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  check_raises "to_int on Bool" (fun () -> Value.to_int (Value.Bool true));
  check_raises "to_bool on Int" (fun () -> Value.to_bool (Value.Int 0));
  check_raises "to_pair on Unit" (fun () -> Value.to_pair Value.Unit);
  check_raises "to_list on Pair" (fun () ->
      Value.to_list (Value.Pair (Value.Unit, Value.Unit)));
  check_raises "to_aid on Pid" (fun () -> Value.to_aid (Value.Pid (Proc_id.of_int 1)))

(* -------------------------- identifiers --------------------------- *)

let qcheck_interval_id_order_total =
  QCheck.Test.make ~name:"interval id: compare is a total order" ~count:500
    QCheck.(triple (pair small_nat small_nat) (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((o1, s1), (o2, s2), (o3, s3)) ->
      let mk (o, s) = Interval_id.make ~owner:(Proc_id.of_int o) ~seq:s in
      let a = mk (o1, s1) and b = mk (o2, s2) and c = mk (o3, s3) in
      let cmp = Interval_id.compare in
      (* antisymmetry and transitivity on this sample *)
      (cmp a b <> 0 || Interval_id.equal a b)
      && (not (cmp a b < 0 && cmp b c < 0) || cmp a c < 0))

let test_interval_id_owner_major () =
  let a = Interval_id.make ~owner:(Proc_id.of_int 1) ~seq:100 in
  let b = Interval_id.make ~owner:(Proc_id.of_int 2) ~seq:0 in
  Alcotest.(check bool) "owner dominates" true (Interval_id.compare a b < 0)

let test_aid_roundtrip () =
  let p = Proc_id.of_int 17 in
  Alcotest.(check int) "aid <-> proc" 17 (Proc_id.to_int (Aid.to_proc (Aid.of_proc p)))

let test_aid_set_pp () =
  let s = Aid.Set.of_list [ Aid.of_proc (Proc_id.of_int 2); Aid.of_proc (Proc_id.of_int 1) ] in
  Alcotest.(check string) "sorted render" "{X1,X2}" (Format.asprintf "%a" Aid.Set.pp s)

(* --------------------------- Aid_set ------------------------------ *)

(* The hash-consed hybrid sets (Aid_set) must agree with stdlib Set.Make
   on every operation, across both layouts (sorted array <= 32 elements,
   bitset beyond), and uphold the hash-consing identity: structurally
   equal sets are physically equal with equal ids. Indices up to ~200 at
   sizes up to ~120 exercise the layout switch and word boundaries. *)
module Oracle = Set.Make (struct
  type t = Aid.t

  let compare = Aid.compare
end)

let aid_of_int i = Aid.of_proc (Proc_id.of_int i)

(* A list of AID indices; the pair-of-lists generator below feeds every
   binary law. *)
let aid_list_gen =
  QCheck.Gen.(list_size (int_bound 120) (map aid_of_int (int_bound 200)))

let arbitrary_aid_lists =
  QCheck.make
    ~print:(fun (a, b) ->
      let show l =
        String.concat ","
          (List.map (fun x -> string_of_int (Proc_id.to_int (Aid.to_proc x))) l)
      in
      Printf.sprintf "([%s],[%s])" (show a) (show b))
    QCheck.Gen.(pair aid_list_gen aid_list_gen)

let same (s : Aid.Set.t) (o : Oracle.t) =
  List.equal Aid.equal (Aid.Set.elements s) (Oracle.elements o)

let qcheck_aid_set_vs_oracle =
  QCheck.Test.make ~name:"aid set: union/inter/diff agree with Set.Make"
    ~count:1000 arbitrary_aid_lists (fun (la, lb) ->
      let s1 = Aid.Set.of_list la and s2 = Aid.Set.of_list lb in
      let o1 = Oracle.of_list la and o2 = Oracle.of_list lb in
      same s1 o1 && same s2 o2
      && same (Aid.Set.union s1 s2) (Oracle.union o1 o2)
      && same (Aid.Set.inter s1 s2) (Oracle.inter o1 o2)
      && same (Aid.Set.diff s1 s2) (Oracle.diff o1 o2))

let qcheck_aid_set_queries_vs_oracle =
  QCheck.Test.make ~name:"aid set: mem/disjoint/subset/equal agree with Set.Make"
    ~count:1000 arbitrary_aid_lists (fun (la, lb) ->
      let s1 = Aid.Set.of_list la and s2 = Aid.Set.of_list lb in
      let o1 = Oracle.of_list la and o2 = Oracle.of_list lb in
      Aid.Set.disjoint s1 s2 = Oracle.disjoint o1 o2
      && Aid.Set.subset s1 s2 = Oracle.subset o1 o2
      && Aid.Set.equal s1 s2 = Oracle.equal o1 o2
      && Aid.Set.cardinal s1 = Oracle.cardinal o1
      && List.for_all (fun x -> Aid.Set.mem x s1 = Oracle.mem x o1) lb
      && List.for_all
           (fun x -> same (Aid.Set.remove x s1) (Oracle.remove x o1))
           lb
      && List.for_all (fun x -> same (Aid.Set.add x s2) (Oracle.add x o2)) la)

let qcheck_aid_set_hash_consing =
  QCheck.Test.make
    ~name:"aid set: structurally equal means physically equal (same id)"
    ~count:1000 arbitrary_aid_lists (fun (la, lb) ->
      (* Build the same element set through two different operation
         sequences; hash-consing must yield the same physical node. *)
      let s1 = Aid.Set.of_list (la @ lb) in
      let s2 = Aid.Set.union (Aid.Set.of_list la) (Aid.Set.of_list lb) in
      let s3 = List.fold_left (fun acc x -> Aid.Set.add x acc) (Aid.Set.of_list lb) la in
      s1 == s2 && s1 == s3
      && Aid.Set.id s1 = Aid.Set.id s2
      && Aid.Set.id s1 = Aid.Set.id s3
      && Aid.Set.equal s1 s2)

let qcheck_aid_set_fold_order =
  QCheck.Test.make ~name:"aid set: iteration order matches Set.Make" ~count:500
    arbitrary_aid_lists (fun (la, lb) ->
      let l = la @ lb in
      let s = Aid.Set.of_list l and o = Oracle.of_list l in
      List.equal Aid.equal
        (List.rev (Aid.Set.fold (fun x acc -> x :: acc) s []))
        (List.rev (Oracle.fold (fun x acc -> x :: acc) o []))
      && Aid.Set.min_elt_opt s = Oracle.min_elt_opt o)

(* Interval_id.Set packs (owner, seq) into one integer index; the packing
   must preserve the owner-major element order. *)
module Iid_oracle = Set.Make (struct
  type t = Interval_id.t

  let compare = Interval_id.compare
end)

let qcheck_interval_id_set_order =
  QCheck.Test.make ~name:"interval id set: packed index preserves order"
    ~count:500
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      (* seq = -1 is the runtime's definite interval; include it. *)
      let iids =
        List.map
          (fun (o, s) -> Interval_id.make ~owner:(Proc_id.of_int o) ~seq:(s - 1))
          pairs
      in
      List.equal Interval_id.equal
        (Interval_id.Set.elements (Interval_id.Set.of_list iids))
        (Iid_oracle.elements (Iid_oracle.of_list iids)))

(* ------------------------------ Wire ------------------------------ *)

let test_wire_target_and_names () =
  let iid = Interval_id.make ~owner:(Proc_id.of_int 3) ~seq:7 in
  let msgs =
    [
      (Wire.Guess { iid }, "guess");
      (Wire.Affirm { iid; ido = Aid.Set.empty }, "affirm");
      (Wire.Deny { iid }, "deny");
      (Wire.Replace { iid; ido = Aid.Set.empty }, "replace");
      (Wire.Rollback { iid }, "rollback");
    ]
  in
  List.iter
    (fun (w, name) ->
      Alcotest.(check string) "type name" name (Wire.type_name w);
      Alcotest.(check bool) "target" true (Interval_id.equal (Wire.target w) iid))
    msgs

(* ---------------------------- Envelope ---------------------------- *)

let test_envelope_accessors () =
  let src = Proc_id.of_int 1 and dst = Proc_id.of_int 2 in
  let tags = Aid.Set.singleton (Aid.of_proc (Proc_id.of_int 9)) in
  let user = Envelope.make ~id:5 ~src ~dst (Envelope.User { value = Value.Int 3; tags }) in
  let ctl =
    Envelope.make ~id:6 ~src ~dst
      (Envelope.Control (Wire.Deny { iid = Interval_id.make ~owner:dst ~seq:0 }))
  in
  Alcotest.(check bool) "user is user" true (Envelope.is_user user);
  Alcotest.(check bool) "ctl is control" true (Envelope.is_control ctl);
  Alcotest.(check bool) "value" true (Value.equal (Envelope.value user) (Value.Int 3));
  Alcotest.(check bool) "tags" true (Aid.Set.equal (Envelope.tags user) tags);
  Alcotest.(check bool) "control has no tags" true (Aid.Set.is_empty (Envelope.tags ctl));
  Alcotest.(check bool) "value of control raises" true
    (try ignore (Envelope.value ctl); false with Invalid_argument _ -> true)

let () =
  Alcotest.run "types"
    [
      ( "value",
        [
          QCheck_alcotest.to_alcotest qcheck_value_equal_reflexive;
          QCheck_alcotest.to_alcotest qcheck_value_size_positive;
          QCheck_alcotest.to_alcotest qcheck_value_triple_roundtrip;
          test "inequality" test_value_inequality;
          test "projections raise on mismatch" test_value_projections_raise;
        ] );
      ( "identifiers",
        [
          QCheck_alcotest.to_alcotest qcheck_interval_id_order_total;
          test "interval order is owner-major" test_interval_id_owner_major;
          test "aid roundtrip" test_aid_roundtrip;
          test "aid set printing" test_aid_set_pp;
        ] );
      ( "aid-set",
        [
          QCheck_alcotest.to_alcotest qcheck_aid_set_vs_oracle;
          QCheck_alcotest.to_alcotest qcheck_aid_set_queries_vs_oracle;
          QCheck_alcotest.to_alcotest qcheck_aid_set_hash_consing;
          QCheck_alcotest.to_alcotest qcheck_aid_set_fold_order;
          QCheck_alcotest.to_alcotest qcheck_interval_id_set_order;
        ] );
      ("wire", [ test "targets and names" test_wire_target_and_names ]);
      ("envelope", [ test "accessors" test_envelope_accessors ]);
    ]
