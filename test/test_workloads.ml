(* Integration tests over the experiment workloads: both protocol variants
   complete, the invariants hold, and the headline shape claims of the
   paper hold at the test scale. *)

module Report = Hope_workloads.Report
module Pipeline = Hope_workloads.Pipeline
module Replication = Hope_workloads.Replication
module Phold = Hope_workloads.Phold
module Job = Hope_workloads.Job
module Recovery = Hope_workloads.Recovery
module Scientific = Hope_workloads.Scientific
module Occ = Hope_workloads.Occ
module Latency = Hope_net.Latency

let test name f = Alcotest.test_case name `Quick f

(* --------------------------- report ------------------------------- *)

let small_report = { Report.default_params with sections = 10 }

let test_report_both_modes_complete () =
  let pess = Report.run ~mode:`Pessimistic small_report in
  let opt = Report.run ~mode:`Optimistic small_report in
  Alcotest.(check bool) "pessimistic makes progress" true
    (pess.Report.completion_time > 0.0);
  Alcotest.(check bool) "optimistic makes progress" true
    (opt.Report.completion_time > 0.0);
  Alcotest.(check int) "pessimistic never guesses" 0 pess.Report.guesses;
  Alcotest.(check bool) "optimistic guesses" true (opt.Report.guesses > 0)

let test_report_optimism_wins_on_wan () =
  let pess = Report.run ~latency:Latency.wan ~mode:`Pessimistic small_report in
  let opt = Report.run ~latency:Latency.wan ~mode:`Optimistic small_report in
  Alcotest.(check bool) "optimistic at least 2x faster on WAN" true
    (opt.Report.completion_time *. 2.0 < pess.Report.completion_time)

let test_report_savings_grow_with_latency () =
  let saving latency =
    let pess = Report.run ~latency ~mode:`Pessimistic small_report in
    let opt = Report.run ~latency ~mode:`Optimistic small_report in
    1.0 -. (opt.Report.completion_time /. pess.Report.completion_time)
  in
  let lan = saving Latency.lan and wan = saving Latency.wan in
  Alcotest.(check bool)
    (Printf.sprintf "wan saving (%.2f) exceeds lan saving (%.2f)" wan lan)
    true (wan > lan)

let test_report_rollbacks_match_page_breaks () =
  (* page_size 4 with 2 lines/section: a break every 2 sections. *)
  let p = { Report.default_params with sections = 10; page_size = 4 } in
  let opt = Report.run ~mode:`Optimistic p in
  Alcotest.(check bool)
    (Printf.sprintf "rollbacks (%d) at least the break count" opt.Report.rollbacks)
    true
    (opt.Report.rollbacks >= 4)

let test_report_non_fifo_repairs_ordering () =
  (* A reordering network makes S3 overtake S1 sometimes; the Order
     assumption must catch every overtaking, and the run must still
     converge with all invariants intact (Report.run checks them). *)
  let jittery = Latency.Lognormal { median = 2e-3; sigma = 0.8 } in
  let r = Report.run ~latency:jittery ~fifo:false ~mode:`Optimistic small_report in
  Alcotest.(check bool) "violations detected" true (r.Report.order_violations > 0);
  Alcotest.(check bool) "repaired by rollbacks" true
    (r.Report.rollbacks >= r.Report.order_violations);
  let fifo = Report.run ~latency:jittery ~fifo:true ~mode:`Optimistic small_report in
  Alcotest.(check int) "no violations on FIFO networks" 0
    fifo.Report.order_violations

(* Property: the report workload converges and holds the invariants for
   arbitrary parameter combinations (Report.run checks invariants
   internally and raises on violation or non-quiescence). *)
let qcheck_report_any_params =
  QCheck.Test.make ~name:"report: converges for any parameters" ~count:25
    QCheck.(triple (int_range 1 1000) (int_range 1 12) (int_range 2 30))
    (fun (seed, sections, page_size) ->
      let p = { Report.default_params with sections; page_size } in
      let r = Report.run ~seed ~mode:`Optimistic p in
      r.Report.completion_time > 0.0)

let test_report_deterministic () =
  let a = Report.run ~seed:9 ~mode:`Optimistic small_report in
  let b = Report.run ~seed:9 ~mode:`Optimistic small_report in
  Alcotest.(check (float 0.0)) "same completion time" a.Report.completion_time
    b.Report.completion_time;
  Alcotest.(check int) "same message count" a.Report.messages b.Report.messages

(* --------------------------- pipeline ----------------------------- *)

let small_pipeline = { Pipeline.default_params with tasks = 20 }

let test_pipeline_perfect_accuracy_no_rollbacks () =
  let p = { small_pipeline with accuracy = 1.0 } in
  let r = Pipeline.run ~mode:(Pipeline.Speculative None) p in
  Alcotest.(check int) "no rollbacks" 0 r.Pipeline.rollbacks;
  Alcotest.(check int) "no denials" 0 r.Pipeline.denials

let test_pipeline_speculation_wins_at_high_accuracy () =
  let p = { small_pipeline with accuracy = 0.95 } in
  let pess = Pipeline.run ~mode:Pipeline.Pessimistic p in
  let spec = Pipeline.run ~mode:(Pipeline.Speculative None) p in
  Alcotest.(check bool) "speculation faster" true
    (spec.Pipeline.completion_time < pess.Pipeline.completion_time)

let test_pipeline_crossover_exists () =
  let at accuracy =
    let p = { small_pipeline with accuracy } in
    let pess = Pipeline.run ~mode:Pipeline.Pessimistic p in
    let spec = Pipeline.run ~mode:(Pipeline.Speculative None) p in
    spec.Pipeline.completion_time /. pess.Pipeline.completion_time
  in
  Alcotest.(check bool) "wins when right" true (at 0.95 < 1.0);
  Alcotest.(check bool) "degrades when wrong" true (at 0.1 > at 0.95)

let test_pipeline_window_ordering () =
  let p = { small_pipeline with accuracy = 1.0 } in
  let time window =
    (Pipeline.run ~mode:(Pipeline.Speculative window) p).Pipeline.completion_time
  in
  let unbounded = time None and w1 = time (Some 1) in
  Alcotest.(check bool)
    (Printf.sprintf "unbounded (%.4f) beats window=1 (%.4f)" unbounded w1)
    true (unbounded < w1)

let test_pipeline_same_fates_across_modes () =
  let p = { small_pipeline with accuracy = 0.7 } in
  let pess = Pipeline.run ~mode:Pipeline.Pessimistic p in
  let spec = Pipeline.run ~mode:(Pipeline.Speculative None) p in
  (* The pessimistic run validates each task exactly once, so its denial
     count is the ground-truth number of bad tasks; the speculative run
     can only see more (re-validation after cascaded rollbacks). *)
  Alcotest.(check bool) "speculative denials >= ground truth" true
    (spec.Pipeline.denials >= pess.Pipeline.denials);
  Alcotest.(check bool) "ground truth positive at 70%" true
    (pess.Pipeline.denials > 0)

(* -------------------------- replication --------------------------- *)

let small_replication = { Replication.default_params with replicas = 2; updates = 10 }

let test_replication_zero_conflicts_clean () =
  let p = { small_replication with conflict_rate = 0.0 } in
  let r = Replication.run ~mode:`Optimistic p in
  Alcotest.(check int) "no rollbacks" 0 r.Replication.rollbacks;
  Alcotest.(check int) "no conflicts" 0 r.Replication.conflicts

let test_replication_optimism_wins_when_clean () =
  let p = { small_replication with conflict_rate = 0.0 } in
  let pess = Replication.run ~mode:`Pessimistic p in
  let opt = Replication.run ~mode:`Optimistic p in
  Alcotest.(check bool) "optimistic throughput higher" true
    (opt.Replication.throughput > pess.Replication.throughput)

let test_replication_conflicts_hurt () =
  let clean =
    Replication.run ~mode:`Optimistic { small_replication with conflict_rate = 0.0 }
  in
  let dirty =
    Replication.run ~mode:`Optimistic { small_replication with conflict_rate = 0.4 }
  in
  Alcotest.(check bool) "conflicts reduce throughput" true
    (dirty.Replication.throughput < clean.Replication.throughput);
  Alcotest.(check bool) "rollbacks happened" true (dirty.Replication.rollbacks > 0)

(* ----------------------------- phold ------------------------------ *)

let small_phold = { Phold.default_params with jobs = 5; horizon = 5.0 }

let test_phold_three_engines_agree () =
  let seq = Phold.run_sequential small_phold in
  let tw = Phold.run_timewarp small_phold in
  let hope = Phold.run_hope small_phold in
  Alcotest.(check bool) "tw = seq" true (tw.Phold.checksums = seq.Phold.checksums);
  Alcotest.(check bool) "hope = seq" true (hope.Phold.checksums = seq.Phold.checksums);
  Alcotest.(check int) "tw events" seq.Phold.handled_total tw.Phold.handled_total;
  Alcotest.(check int) "hope events" seq.Phold.handled_total hope.Phold.handled_total

let test_job_routing_deterministic () =
  let j = { Job.job_id = 3; hop = 7 } in
  let a = Job.route ~n_lps:8 ~mean_delay:1.0 ~remote_prob:0.5 ~from_lp:2 j in
  let b = Job.route ~n_lps:8 ~mean_delay:1.0 ~remote_prob:0.5 ~from_lp:2 j in
  Alcotest.(check bool) "same (delay, dest)" true (a = b)

let qcheck_job_route_valid =
  QCheck.Test.make ~name:"job: route destination in range, delay positive" ~count:300
    QCheck.(triple small_nat small_nat (int_range 1 16))
    (fun (job_id, hop, n_lps) ->
      let delay, dest =
        Job.route ~n_lps ~mean_delay:1.0 ~remote_prob:0.5 ~from_lp:0
          { Job.job_id; hop }
      in
      delay > 0.0 && dest >= 0 && dest < n_lps)

(* ---------------------------- recovery ---------------------------- *)

let small_recovery = { Recovery.default_params with messages = 10 }

let test_recovery_no_crashes_clean () =
  let p = { small_recovery with crash_rate = 0.0 } in
  let r = Recovery.run ~mode:`Optimistic p in
  Alcotest.(check int) "no rollbacks" 0 r.Recovery.rollbacks;
  Alcotest.(check int) "no crashes" 0 r.Recovery.crashes

let test_recovery_optimism_wins_when_stable () =
  let p = { small_recovery with crash_rate = 0.0 } in
  let pess = Recovery.run ~mode:`Pessimistic p in
  let opt = Recovery.run ~mode:`Optimistic p in
  Alcotest.(check bool) "optimistic logging faster" true
    (opt.Recovery.makespan < pess.Recovery.makespan)

let test_recovery_survives_crashes () =
  let p = { small_recovery with crash_rate = 0.3 } in
  let r = Recovery.run ~mode:`Optimistic p in
  (* The receiver applied all messages (run completed) despite crashes. *)
  Alcotest.(check bool) "crashes occurred" true (r.Recovery.crashes > 0);
  Alcotest.(check bool) "recovered via rollback" true (r.Recovery.rollbacks > 0)

let test_recovery_same_crash_fates () =
  (* Both protocols must see the same first-attempt crash fates. *)
  let p = { small_recovery with crash_rate = 0.3 } in
  let pess = Recovery.run ~mode:`Pessimistic p in
  let opt = Recovery.run ~mode:`Optimistic p in
  Alcotest.(check int) "same crash count" pess.Recovery.crashes opt.Recovery.crashes

(* --------------------------- scientific --------------------------- *)

let small_scientific = { Scientific.default_params with workers = 2; converge_at = 5 }

let test_scientific_converges () =
  let r = Scientific.run ~mode:`Optimistic small_scientific in
  Alcotest.(check bool) "finished" true (r.Scientific.makespan > 0.0);
  Alcotest.(check bool) "rolled back the overshoot" true (r.Scientific.rollbacks > 0)

let test_scientific_speedup_grows_with_latency () =
  let speedup latency =
    let pess = Scientific.run ~latency ~mode:`Pessimistic small_scientific in
    let opt = Scientific.run ~latency ~mode:`Optimistic small_scientific in
    pess.Scientific.makespan /. opt.Scientific.makespan
  in
  let lan = speedup Latency.lan and wan = speedup Latency.wan in
  Alcotest.(check bool)
    (Printf.sprintf "wan speedup (%.2f) exceeds lan speedup (%.2f)" wan lan)
    true (wan > lan)

let test_scientific_waste_adapts_to_latency () =
  let waste latency =
    (Scientific.run ~latency ~mode:`Optimistic small_scientific)
      .Scientific.wasted_iterations
  in
  Alcotest.(check bool) "deeper overshoot on slower networks" true
    (waste Latency.wan > waste Latency.lan)

(* ------------------------------ OCC -------------------------------- *)

let small_occ = { Occ.default_params with clients = 2; transactions = 6 }

(* Occ.run itself raises when the final store state disagrees with the
   committed write count, so these tests double as serializability
   checks. *)
let test_occ_uncontended () =
  let p = { small_occ with keys = 512 } in
  let pess = Occ.run ~mode:`Pessimistic p in
  let opt = Occ.run ~mode:`Optimistic p in
  Alcotest.(check int) "no aborts" 0 opt.Occ.aborts;
  Alcotest.(check int) "same committed writes" pess.Occ.version_sum
    opt.Occ.version_sum;
  Alcotest.(check bool) "OCC faster without contention" true
    (opt.Occ.makespan < pess.Occ.makespan)

let test_occ_contended_still_serializable () =
  (* keys=4 with 2 clients x 6 txns: heavy contention; Occ.run validates
     the version sum internally. *)
  let p = { small_occ with keys = 4 } in
  let opt = Occ.run ~mode:`Optimistic p in
  Alcotest.(check bool) "aborts happened" true (opt.Occ.aborts > 0);
  Alcotest.(check bool) "rollbacks repaired them" true (opt.Occ.rollbacks > 0);
  let pess = Occ.run ~mode:`Pessimistic p in
  Alcotest.(check int) "same committed writes" pess.Occ.version_sum
    opt.Occ.version_sum

let test_occ_deterministic () =
  let a = Occ.run ~seed:3 ~mode:`Optimistic small_occ in
  let b = Occ.run ~seed:3 ~mode:`Optimistic small_occ in
  Alcotest.(check bool) "identical runs" true (a = b)

(* Hybrid at high zipf skew: the self-installed hybrid governor
   escalates the hot guard, guesses park in its acquisition queue, and
   the validation-conflict storm collapses — while the committed writes
   stay exactly serializable (Occ.run checks the version sum itself). *)
let test_occ_hybrid_escalates_under_skew () =
  let p =
    {
      Occ.default_params with
      clients = 4;
      transactions = 10;
      keys = 16;
      skew = 2.0;
      think_time = 2e-3;
      store_cost = 0.5e-3;
    }
  in
  let opt = Occ.run ~mode:`Optimistic p in
  let hyb = Occ.run ~mode:`Hybrid p in
  Alcotest.(check int) "same committed writes" opt.Occ.version_sum
    hyb.Occ.version_sum;
  Alcotest.(check bool) "hot guard escalated" true (hyb.Occ.escalations >= 1);
  Alcotest.(check bool) "guesses parked in the queue" true
    (hyb.Occ.acquire_waits >= 1);
  Alcotest.(check bool) "conflict storm damped" true
    (hyb.Occ.aborts < opt.Occ.aborts)

(* At zero skew the guards stay optimistic: no escalations, and the
   guard guesses cost only wait-free message overhead. *)
let test_occ_hybrid_idle_at_uniform_load () =
  let p = { small_occ with keys = 64 } in
  let opt = Occ.run ~mode:`Optimistic p in
  let hyb = Occ.run ~mode:`Hybrid p in
  Alcotest.(check int) "same committed writes" opt.Occ.version_sum
    hyb.Occ.version_sum;
  Alcotest.(check int) "no escalations" 0 hyb.Occ.escalations;
  Alcotest.(check int) "no queued waits" 0 hyb.Occ.acquire_waits

let () =
  Alcotest.run "workloads"
    [
      ( "report",
        [
          test "both modes complete" test_report_both_modes_complete;
          test "optimism wins on WAN" test_report_optimism_wins_on_wan;
          test "savings grow with latency" test_report_savings_grow_with_latency;
          test "rollbacks track page breaks" test_report_rollbacks_match_page_breaks;
          test "non-FIFO ordering repaired" test_report_non_fifo_repairs_ordering;
          test "deterministic" test_report_deterministic;
          QCheck_alcotest.to_alcotest qcheck_report_any_params;
        ] );
      ( "pipeline",
        [
          test "perfect accuracy is rollback-free"
            test_pipeline_perfect_accuracy_no_rollbacks;
          test "speculation wins at high accuracy"
            test_pipeline_speculation_wins_at_high_accuracy;
          test "crossover exists" test_pipeline_crossover_exists;
          test "unbounded beats window=1" test_pipeline_window_ordering;
          test "fates consistent across modes" test_pipeline_same_fates_across_modes;
        ] );
      ( "replication",
        [
          test "zero conflicts is clean" test_replication_zero_conflicts_clean;
          test "optimism wins when clean" test_replication_optimism_wins_when_clean;
          test "conflicts hurt" test_replication_conflicts_hurt;
        ] );
      ( "phold",
        [
          test "three engines agree" test_phold_three_engines_agree;
          test "job routing deterministic" test_job_routing_deterministic;
          QCheck_alcotest.to_alcotest qcheck_job_route_valid;
        ] );
      ( "recovery",
        [
          test "no crashes is clean" test_recovery_no_crashes_clean;
          test "optimism wins when stable" test_recovery_optimism_wins_when_stable;
          test "survives crashes via rollback" test_recovery_survives_crashes;
          test "same crash fates across modes" test_recovery_same_crash_fates;
        ] );
      ( "scientific",
        [
          test "converges and rolls back overshoot" test_scientific_converges;
          test "speedup grows with latency" test_scientific_speedup_grows_with_latency;
          test "overshoot adapts to latency" test_scientific_waste_adapts_to_latency;
        ] );
      ( "occ",
        [
          test "uncontended: OCC wins, serializable" test_occ_uncontended;
          test "contended: aborts repaired, serializable"
            test_occ_contended_still_serializable;
          test "deterministic" test_occ_deterministic;
          test "hybrid escalates under skew" test_occ_hybrid_escalates_under_skew;
          test "hybrid idle at uniform load" test_occ_hybrid_idle_at_uniform_load;
        ] );
    ]
